//! Quartile micro-op expansion (§4.1 of the paper).
//!
//! A SIMD16 macro instruction is treated internally as four quartile
//! micro-ops (`ADD.Q0` … `ADD.Q3`), each covering one quad of channels and a
//! 128-bit half of each operand register. BCC suppresses the issue of
//! micro-ops whose quad is fully disabled — along with their operand fetches
//! and write-backs, which is where the register-file energy savings come
//! from.

use crate::cycles::CompactionMode;
use crate::scc::SccSchedule;
use iwc_isa::insn::Instruction;
use iwc_isa::mask::{ExecMask, QUAD};
use iwc_isa::reg::GRF_BYTES;
use serde::{Deserialize, Serialize};

/// Half of a 256-bit GRF register (the BCC register file of Fig. 5(b) is
/// addressable at this 128-bit granularity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegHalf {
    /// GRF register number.
    pub reg: u8,
    /// 0 = lower 128 bits (`.H0`), 1 = upper (`.H1`).
    pub half: u8,
}

/// One quartile micro-op of a macro instruction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Quartile index within the macro instruction (0-based).
    pub quartile: u8,
    /// 4-bit channel-enable mask within the quad.
    pub quad_mask: u8,
    /// Register halves fetched for the sources.
    pub src_fetches: Vec<RegHalf>,
    /// Register half written by the destination, if any.
    pub dst_writeback: Option<RegHalf>,
}

/// Expansion of one macro instruction into issued micro-ops, with
/// suppressed-fetch accounting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Expansion {
    /// Micro-ops actually issued, in issue order.
    pub issued: Vec<MicroOp>,
    /// Number of quartile micro-ops suppressed relative to baseline.
    pub suppressed: u32,
    /// Operand-fetch register-half accesses saved relative to baseline.
    pub fetches_saved: u32,
    /// Write-back register-half accesses saved relative to baseline.
    pub writebacks_saved: u32,
}

fn reg_half_of(reg_opt: Option<u8>, width: u32, elem_bytes: u32, quartile: u32) -> Option<RegHalf> {
    let base = reg_opt?;
    // Byte offset of the quartile's first channel within the operand.
    let byte = quartile * QUAD * elem_bytes;
    let reg = base as u32 + byte / GRF_BYTES;
    let half = (byte % GRF_BYTES) / (GRF_BYTES / 2);
    // Quartiles that span less than a half register (narrow types at narrow
    // widths) still fetch the half they live in.
    let _ = width;
    Some(RegHalf {
        reg: reg as u8,
        half: half as u8,
    })
}

/// Expands `insn` executed under `mask` into quartile micro-ops according to
/// the compaction mode.
///
/// # Examples
///
/// The §4.1 worked example — `ADD(16) R12, R8, R10` with mask `0xF0F0`
/// suppresses `ADD.Q0` and `ADD.Q2` under BCC:
///
/// ```
/// use iwc_compaction::{expand, CompactionMode};
/// use iwc_isa::{DataType, ExecMask, Instruction, Opcode, Operand};
///
/// let insn = Instruction::alu(
///     Opcode::Add, 16, DataType::F,
///     Operand::rf(12), &[Operand::rf(8), Operand::rf(10)],
/// );
/// let e = expand(&insn, ExecMask::new(0xF0F0, 16), CompactionMode::Bcc);
/// let quartiles: Vec<u8> = e.issued.iter().map(|m| m.quartile).collect();
/// assert_eq!(quartiles, vec![1, 3]);
/// assert_eq!(e.fetches_saved, 4); // two sources for each suppressed quartile
/// ```
///
/// * `Baseline` issues every quartile (even fully-disabled ones).
/// * `IvyBridge` suppresses the idle half of a half-idle SIMD16 instruction.
/// * `Bcc` suppresses every fully-disabled quartile.
/// * `Scc` issues ⌈active/4⌉ packed micro-ops; packed micro-ops fetch the
///   *full-width* operand once per source (the 512-bit latch of Fig. 5(c)),
///   so SCC saves execution cycles but not operand fetches (§4.2).
///
/// # Panics
///
/// Panics if the mask width differs from the instruction execution width.
pub fn expand(insn: &Instruction, mask: ExecMask, mode: CompactionMode) -> Expansion {
    crate::engine::engine_of(mode).expand(insn, mask)
}

/// Expands `insn` into the quartile micro-ops named by `issue_set` — the
/// shared body of the quartile-issue engines (baseline / IVB / BCC), which
/// differ only in which quartiles they issue.
pub(crate) fn expand_quartiles(insn: &Instruction, mask: ExecMask, issue_set: &[u32]) -> Expansion {
    assert_eq!(
        mask.width(),
        insn.exec_width,
        "mask width {} != instruction width {}",
        mask.width(),
        insn.exec_width
    );
    let elem = insn.dtype.size_bytes();
    let quads = mask.quad_count();
    let src_regs: Vec<Option<u8>> = insn.read_operands().iter().map(|o| o.grf_reg()).collect();
    let dst_reg = insn.dst.grf_reg();

    let issued: Vec<MicroOp> = issue_set
        .iter()
        .map(|&q| MicroOp {
            quartile: q as u8,
            quad_mask: mask.quad_bits(q),
            src_fetches: src_regs
                .iter()
                .filter_map(|&r| reg_half_of(r, insn.exec_width, elem, q))
                .collect(),
            dst_writeback: reg_half_of(dst_reg, insn.exec_width, elem, q),
        })
        .collect();
    let per_quartile_fetches = src_regs.iter().flatten().count() as u32;
    let suppressed = quads - issued.len() as u32;
    Expansion {
        suppressed,
        fetches_saved: suppressed * per_quartile_fetches,
        writebacks_saved: if dst_reg.is_some() { suppressed } else { 0 },
        issued,
    }
}

/// Expands `insn` into the packed micro-ops of a swizzle schedule — the
/// shared body of the swizzling engines (SCC and its limited-reach
/// variants). Packed micro-ops fetch the *full-width* operand once per
/// source (the 512-bit latch of Fig. 5(c)), charged to the first micro-op.
pub(crate) fn expand_scheduled(
    insn: &Instruction,
    mask: ExecMask,
    sched: &SccSchedule,
) -> Expansion {
    assert_eq!(
        mask.width(),
        insn.exec_width,
        "mask width {} != instruction width {}",
        mask.width(),
        insn.exec_width
    );
    let elem = insn.dtype.size_bytes();
    let quads = mask.quad_count();
    let src_regs: Vec<Option<u8>> = insn.read_operands().iter().map(|o| o.grf_reg()).collect();
    let dst_reg = insn.dst.grf_reg();

    let per_fetch: Vec<RegHalf> = src_regs
        .iter()
        .flat_map(|&r| {
            // A full-width operand fetch touches every half the operand
            // spans; it happens once per source for the whole macro op.
            r.map(|base| {
                let total_bytes = insn.exec_width * elem;
                let halves = total_bytes.div_ceil(GRF_BYTES / 2);
                (0..halves).map(move |h| RegHalf {
                    reg: (u32::from(base) + h / 2) as u8,
                    half: (h % 2) as u8,
                })
            })
        })
        .flatten()
        .collect();
    let mut issued = Vec::new();
    for (c, slots) in sched.cycles().iter().enumerate() {
        let quad_mask = slots.iter().enumerate().fold(0u8, |m, (n, s)| {
            if s.channel(n as u8).is_some() {
                m | 1 << n
            } else {
                m
            }
        });
        issued.push(MicroOp {
            quartile: c as u8,
            quad_mask,
            // Operand fetch cost is charged to the first micro-op; the
            // rest consume the latched full-width operand.
            src_fetches: if c == 0 {
                per_fetch.clone()
            } else {
                Vec::new()
            },
            dst_writeback: dst_reg.map(|base| RegHalf { reg: base, half: 0 }),
        });
    }
    let baseline_fetches = quads * src_regs.iter().flatten().count() as u32;
    let actual: u32 = issued.iter().map(|m| m.src_fetches.len() as u32).sum();
    let baseline_wb = if dst_reg.is_some() { quads } else { 0 };
    let actual_wb = issued.iter().filter(|m| m.dst_writeback.is_some()).count() as u32;
    Expansion {
        suppressed: quads.saturating_sub(issued.len() as u32),
        fetches_saved: baseline_fetches.saturating_sub(actual),
        writebacks_saved: baseline_wb.saturating_sub(actual_wb),
        issued,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwc_isa::insn::Opcode;
    use iwc_isa::reg::Operand;
    use iwc_isa::types::DataType;

    fn add16() -> Instruction {
        // The §4.1 example: ADD(16) R12, R8, R10 with mask 0xF0F0.
        Instruction::alu(
            Opcode::Add,
            16,
            DataType::F,
            Operand::rf(12),
            &[Operand::rf(8), Operand::rf(10)],
        )
    }

    #[test]
    fn paper_example_bcc_suppresses_q0_q2() {
        let e = expand(&add16(), ExecMask::new(0xF0F0, 16), CompactionMode::Bcc);
        let quartiles: Vec<u8> = e.issued.iter().map(|m| m.quartile).collect();
        assert_eq!(quartiles, vec![1, 3], "ADD.Q0 and ADD.Q2 suppressed");
        assert_eq!(e.suppressed, 2);
        // Two sources per suppressed quartile = 4 fetches saved, 2 writebacks.
        assert_eq!(e.fetches_saved, 4);
        assert_eq!(e.writebacks_saved, 2);
    }

    #[test]
    fn paper_example_register_halves() {
        let e = expand(&add16(), ExecMask::new(0xF0F0, 16), CompactionMode::Bcc);
        // ADD.Q1 accesses R12.H1, R8.H1, R10.H1; ADD.Q3 accesses R13.H1 etc.
        let q1 = &e.issued[0];
        assert_eq!(
            q1.src_fetches,
            vec![RegHalf { reg: 8, half: 1 }, RegHalf { reg: 10, half: 1 }]
        );
        assert_eq!(q1.dst_writeback, Some(RegHalf { reg: 12, half: 1 }));
        let q3 = &e.issued[1];
        assert_eq!(
            q3.src_fetches,
            vec![RegHalf { reg: 9, half: 1 }, RegHalf { reg: 11, half: 1 }]
        );
        assert_eq!(q3.dst_writeback, Some(RegHalf { reg: 13, half: 1 }));
    }

    #[test]
    fn baseline_issues_all_quartiles() {
        let e = expand(
            &add16(),
            ExecMask::new(0xF0F0, 16),
            CompactionMode::Baseline,
        );
        assert_eq!(e.issued.len(), 4);
        assert_eq!(e.suppressed, 0);
        assert_eq!(e.fetches_saved, 0);
    }

    #[test]
    fn ivb_suppresses_idle_half_only() {
        let e = expand(
            &add16(),
            ExecMask::new(0x00F0, 16),
            CompactionMode::IvyBridge,
        );
        let quartiles: Vec<u8> = e.issued.iter().map(|m| m.quartile).collect();
        assert_eq!(quartiles, vec![0, 1]);
        // 0xF0F0 is not half-idle: nothing suppressed.
        let e = expand(
            &add16(),
            ExecMask::new(0xF0F0, 16),
            CompactionMode::IvyBridge,
        );
        assert_eq!(e.issued.len(), 4);
    }

    #[test]
    fn bcc_all_disabled_issues_one_microop() {
        let e = expand(&add16(), ExecMask::none(16), CompactionMode::Bcc);
        assert_eq!(e.issued.len(), 1);
        assert_eq!(e.issued[0].quad_mask, 0);
    }

    #[test]
    fn scc_packs_and_charges_single_fetch() {
        let e = expand(&add16(), ExecMask::new(0x1111, 16), CompactionMode::Scc);
        assert_eq!(e.issued.len(), 1, "4 channels pack into one cycle");
        assert_eq!(e.issued[0].quad_mask, 0xF);
        // Full-width fetch: 2 sources × 4 halves each = 8 half-fetches, vs
        // baseline 4 quartiles × 2 = 8: SCC saves cycles, not fetches (§4.2).
        assert_eq!(e.fetches_saved, 0);
        assert_eq!(e.suppressed, 3);
    }

    #[test]
    fn issued_count_matches_cycle_model() {
        use crate::cycles::waves;
        for bits in [0u32, 0x1, 0xF0F0, 0xAAAA, 0x00FF, 0xFFFF, 0x8001] {
            let m = ExecMask::new(bits, 16);
            for mode in CompactionMode::ALL {
                let e = expand(&add16(), m, mode);
                assert_eq!(
                    e.issued.len() as u32,
                    waves(m, mode),
                    "mask {bits:#x} mode {mode}"
                );
            }
        }
    }
}
