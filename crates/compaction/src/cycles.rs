//! Execution-cycle models for the four studied configurations.
//!
//! A SIMD instruction of width *W* executes over `W / 4` waves of 4 channels
//! through the 4-wide ALU (Fig. 2 of the paper). The models below compute how
//! many of those waves actually issue under each optimization level:
//!
//! * **Baseline** — every wave issues, enabled or not.
//! * **Ivy Bridge** ([`CompactionMode::IvyBridge`]) — the limited optimization
//!   the paper infers from hardware micro-benchmarking (Fig. 8): a SIMD16
//!   instruction whose *upper or lower eight* channels are all disabled
//!   executes as SIMD8 (two waves instead of four).
//! * **BCC** ([`CompactionMode::Bcc`]) — any aligned all-disabled quad is
//!   skipped; cycles = number of active quads.
//! * **SCC** ([`CompactionMode::Scc`]) — channels are swizzled into packed
//!   quads; cycles = ⌈active channels / 4⌉.
//!
//! All modes execute at least one wave even for an all-disabled mask (the
//! instruction still flows down the pipe), and 64-bit data types double-pump
//! the 32-bit datapath, doubling the wave count (§4.1).

use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Divergence-optimization level of the execution pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompactionMode {
    /// No cycle compression: every wave issues.
    Baseline,
    /// The limited half-width optimization present in real Ivy Bridge
    /// hardware. This is the paper's reporting baseline: all BCC/SCC gains
    /// are measured on top of it.
    #[default]
    IvyBridge,
    /// Basic cycle compression (skip all-disabled aligned quads).
    Bcc,
    /// Swizzled cycle compression (pack enabled channels into quads).
    /// Subsumes BCC.
    Scc,
}

impl CompactionMode {
    /// All modes, weakest to strongest.
    pub const ALL: [CompactionMode; 4] = [
        CompactionMode::Baseline,
        CompactionMode::IvyBridge,
        CompactionMode::Bcc,
        CompactionMode::Scc,
    ];

    /// Short label used in reports (`base`, `ivb`, `bcc`, `scc`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Baseline => "base",
            Self::IvyBridge => "ivb",
            Self::Bcc => "bcc",
            Self::Scc => "scc",
        }
    }
}

impl fmt::Display for CompactionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of issue waves (execution cycles in the ALU) for an instruction
/// with execution mask `mask` under `mode`, for a 32-bit data type.
///
/// # Examples
///
/// ```
/// use iwc_compaction::cycles::{waves, CompactionMode};
/// use iwc_isa::mask::ExecMask;
///
/// let m = ExecMask::new(0xAAAA, 16); // 8 channels, 2 per quad
/// assert_eq!(waves(m, CompactionMode::Baseline), 4);
/// assert_eq!(waves(m, CompactionMode::IvyBridge), 4); // no idle half
/// assert_eq!(waves(m, CompactionMode::Bcc), 4);       // every quad active
/// assert_eq!(waves(m, CompactionMode::Scc), 2);       // packs to 2 quads
/// ```
pub fn waves(mask: ExecMask, mode: CompactionMode) -> u32 {
    waves_typed(mask, DataType::F, mode)
}

/// Number of execution waves at the *data-type granularity*: the 4×32-bit
/// datapath consumes [`DataType::elements_per_wave`] channels per cycle
/// (2 for 64-bit types, 8 for 16-bit, 16 for bytes), so the aligned group
/// that must be fully disabled for BCC to skip a wave — and the packing
/// unit SCC fills — scales with the element size. This is §4.1's
/// observation that compression "benefits may be higher for wider
/// datatypes … and lower for narrow datatypes".
///
/// The per-mode formulas live in the mode's [`crate::engine`] implementation;
/// this free function dispatches to the matching static engine.
pub fn waves_typed(mask: ExecMask, dtype: DataType, mode: CompactionMode) -> u32 {
    crate::engine::engine_of(mode).cycles(mask, dtype)
}

/// Execution cycles for `mask` under `mode` at the data-type granularity
/// (see [`waves_typed`]); equals [`waves`] for 32-bit types.
pub fn execution_cycles(mask: ExecMask, dtype: DataType, mode: CompactionMode) -> u32 {
    waves_typed(mask, dtype, mode)
}

/// Per-instruction cycle counts under all four modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Baseline (no compression) cycles.
    pub baseline: u64,
    /// Cycles with the Ivy Bridge half-width optimization.
    pub ivb: u64,
    /// Cycles with BCC.
    pub bcc: u64,
    /// Cycles with SCC.
    pub scc: u64,
}

impl CycleBreakdown {
    /// Computes the breakdown for one instruction.
    pub fn of(mask: ExecMask, dtype: DataType) -> Self {
        Self {
            baseline: u64::from(execution_cycles(mask, dtype, CompactionMode::Baseline)),
            ivb: u64::from(execution_cycles(mask, dtype, CompactionMode::IvyBridge)),
            bcc: u64::from(execution_cycles(mask, dtype, CompactionMode::Bcc)),
            scc: u64::from(execution_cycles(mask, dtype, CompactionMode::Scc)),
        }
    }

    /// Cycle count under `mode`.
    pub fn get(&self, mode: CompactionMode) -> u64 {
        match mode {
            CompactionMode::Baseline => self.baseline,
            CompactionMode::IvyBridge => self.ivb,
            CompactionMode::Bcc => self.bcc,
            CompactionMode::Scc => self.scc,
        }
    }

    /// Accumulates another breakdown (for whole-kernel tallies).
    pub fn accumulate(&mut self, other: Self) {
        self.baseline += other.baseline;
        self.ivb += other.ivb;
        self.bcc += other.bcc;
        self.scc += other.scc;
    }

    /// Accumulates `n` repetitions of another breakdown in O(1) — exactly
    /// equal to calling [`accumulate`](Self::accumulate) `n` times, since
    /// every field is an integer sum.
    pub fn accumulate_scaled(&mut self, other: Self, n: u64) {
        self.baseline += other.baseline * n;
        self.ivb += other.ivb * n;
        self.bcc += other.bcc * n;
        self.scc += other.scc * n;
    }

    /// Fractional cycle reduction of `mode` relative to the Ivy Bridge
    /// baseline — the quantity the paper reports ("over and above the
    /// existing Ivy Bridge optimization", §5.2).
    pub fn reduction_vs_ivb(&self, mode: CompactionMode) -> f64 {
        if self.ivb == 0 {
            0.0
        } else {
            1.0 - self.get(mode) as f64 / self.ivb as f64
        }
    }

    /// Fractional cycle reduction of `mode` relative to the uncompressed
    /// baseline.
    pub fn reduction_vs_baseline(&self, mode: CompactionMode) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            1.0 - self.get(mode) as f64 / self.baseline as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m16(bits: u32) -> ExecMask {
        ExecMask::new(bits, 16)
    }

    #[test]
    fn full_mask_takes_full_waves_in_every_mode() {
        for mode in CompactionMode::ALL {
            assert_eq!(waves(ExecMask::all(16), mode), 4, "{mode}");
            assert_eq!(waves(ExecMask::all(8), mode), 2, "{mode}");
        }
    }

    #[test]
    fn ivb_optimizes_half_idle_simd16_only() {
        // Paper §5.2: 0x00FF and 0xFF0F patterns are optimized...
        assert_eq!(waves(m16(0x00FF), CompactionMode::IvyBridge), 2);
        assert_eq!(waves(m16(0xFF00), CompactionMode::IvyBridge), 2);
        // ...but 0xF0F0 and 0xAAAA are not.
        assert_eq!(waves(m16(0xF0F0), CompactionMode::IvyBridge), 4);
        assert_eq!(waves(m16(0xAAAA), CompactionMode::IvyBridge), 4);
        // And SIMD8 half-idle masks are NOT optimized by IVB.
        assert_eq!(waves(ExecMask::new(0x0F, 8), CompactionMode::IvyBridge), 2);
    }

    #[test]
    fn fig8_pattern_ff0f() {
        // 0xFF0F has its *middle* quad idle: half-idle? No — upper byte 0xFF,
        // lower byte 0x0F. Wait: 0xFF0F upper 8 = 0xFF (active), lower 8 =
        // 0x0F (active). IVB does not help; BCC skips the idle quad 1.
        assert_eq!(waves(m16(0xFF0F), CompactionMode::IvyBridge), 4);
        assert_eq!(waves(m16(0xFF0F), CompactionMode::Bcc), 3);
        assert_eq!(waves(m16(0xFF0F), CompactionMode::Scc), 3);
    }

    #[test]
    fn bcc_counts_active_quads() {
        assert_eq!(waves(m16(0xF0F0), CompactionMode::Bcc), 2);
        assert_eq!(waves(m16(0x000F), CompactionMode::Bcc), 1);
        assert_eq!(waves(m16(0x1111), CompactionMode::Bcc), 4); // 1 lane per quad
    }

    #[test]
    fn scc_packs_channels() {
        assert_eq!(waves(m16(0x1111), CompactionMode::Scc), 1); // 4 channels → 1 quad
        assert_eq!(waves(m16(0xAAAA), CompactionMode::Scc), 2); // 8 channels
        assert_eq!(waves(m16(0x7777), CompactionMode::Scc), 3); // 12 channels
        assert_eq!(waves(m16(0x0001), CompactionMode::Scc), 1);
    }

    #[test]
    fn empty_mask_still_takes_one_wave() {
        for mode in [CompactionMode::Bcc, CompactionMode::Scc] {
            assert_eq!(waves(ExecMask::none(16), mode), 1, "{mode}");
        }
        assert_eq!(waves(ExecMask::none(16), CompactionMode::Baseline), 4);
    }

    #[test]
    fn mode_ordering_invariant_sample() {
        // scc <= bcc <= ivb <= baseline for a few interesting masks.
        for bits in [
            0x0000u32, 0x0001, 0x00FF, 0xF0F0, 0xAAAA, 0x8421, 0xFFFF, 0x7F01,
        ] {
            let m = m16(bits);
            let b = CycleBreakdown::of(m, DataType::F);
            assert!(b.scc <= b.bcc, "{bits:#x}");
            assert!(b.bcc <= b.ivb, "{bits:#x}");
            assert!(b.ivb <= b.baseline, "{bits:#x}");
        }
    }

    #[test]
    fn wide_types_double_pump() {
        let m = m16(0xF0F0);
        assert_eq!(
            execution_cycles(m, DataType::Df, CompactionMode::Baseline),
            8
        );
        assert_eq!(execution_cycles(m, DataType::Df, CompactionMode::Bcc), 4);
        assert_eq!(execution_cycles(m, DataType::F, CompactionMode::Bcc), 2);
    }

    #[test]
    fn narrow_types_take_fewer_waves_and_compress_less() {
        // SIMD16 HF: 8 elements per wave → 2 waves uncompressed.
        let full = ExecMask::all(16);
        assert_eq!(
            execution_cycles(full, DataType::Hf, CompactionMode::Baseline),
            2
        );
        // One active quad: a 32-bit type saves 3 of 4 waves with BCC...
        let sparse = m16(0x000F);
        assert_eq!(
            execution_cycles(sparse, DataType::F, CompactionMode::Bcc),
            1
        );
        // ...but HF can only save 1 of 2 (the dead group must span 8 lanes).
        assert_eq!(
            execution_cycles(sparse, DataType::Hf, CompactionMode::Bcc),
            1
        );
        assert_eq!(
            execution_cycles(m16(0x0101), DataType::Hf, CompactionMode::Bcc),
            2,
            "both 8-lane groups have an active channel"
        );
        // 64-bit types compress at pair granularity: one active channel
        // leaves a single wave, not two.
        assert_eq!(
            execution_cycles(m16(0x0001), DataType::Df, CompactionMode::Scc),
            1
        );
        assert_eq!(
            execution_cycles(m16(0x0001), DataType::Df, CompactionMode::Baseline),
            8
        );
    }

    #[test]
    fn breakdown_reductions() {
        let mut t = CycleBreakdown::of(m16(0x000F), DataType::F); // ivb=2? lower half 0x000F active, upper idle → 2; bcc=1; scc=1
        assert_eq!(t.ivb, 2);
        assert_eq!(t.bcc, 1);
        assert_eq!(t.reduction_vs_ivb(CompactionMode::Bcc), 0.5);
        assert_eq!(t.reduction_vs_baseline(CompactionMode::Scc), 0.75);
        t.accumulate(CycleBreakdown::of(ExecMask::all(16), DataType::F));
        assert_eq!(t.baseline, 8);
        assert_eq!(t.scc, 5);
    }

    #[test]
    fn simd32_supported() {
        let m = ExecMask::new(0x0000_00FF, 32);
        assert_eq!(waves(m, CompactionMode::Baseline), 8);
        assert_eq!(
            waves(m, CompactionMode::IvyBridge),
            8,
            "IVB opt is SIMD16-specific"
        );
        assert_eq!(waves(m, CompactionMode::Bcc), 2);
        assert_eq!(waves(m, CompactionMode::Scc), 2);
    }
}
