//! Inter-warp compaction comparator (TBC/DWF-class techniques, §6).
//!
//! The paper's central argument is comparative: thread-block compaction and
//! related inter-warp schemes reach higher SIMD efficiency by *merging
//! channels across warps at the same PC*, but (1) they need warp-barrier
//! synchronization and per-lane-addressable register files, and (2) merging
//! warps can **increase memory divergence** because the combined warp's
//! channels come from different warps' address streams. Intra-warp
//! compaction "intrinsically does not create additional memory divergence"
//! (contribution 2).
//!
//! This module models an idealized inter-warp compactor to quantify both
//! effects on a mask/address stream:
//!
//! * [`compact_masks`] — greedily packs the active channels of a group of
//!   same-PC warps into the fewest warps (lane-preserving, as TBC requires:
//!   a channel can only move to the *same lane* of another warp);
//! * [`InterWarpStats`] — the resulting cycle count and the memory
//!   divergence (distinct cache lines per merged memory access) compared
//!   with the unmerged stream.

use crate::cycles::{waves, CompactionMode};
use iwc_isa::mask::ExecMask;
use serde::{Deserialize, Serialize};

/// Result of inter-warp compaction over one group of same-PC warps.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactedGroup {
    /// Compacted execution masks, one per surviving warp (lane-preserving
    /// union packing).
    pub masks: Vec<ExecMask>,
    /// Which source warp each packed channel came from:
    /// `origin[warp][lane] = Some(source warp index)`.
    pub origin: Vec<Vec<Option<u32>>>,
}

/// Greedy lane-preserving inter-warp compaction (the TBC merge rule): for
/// each lane position, the active channels of the source warps stack into
/// the fewest output warps. The number of output warps is the maximum
/// per-lane occupancy — lane conflicts, not total channel count, bound the
/// compaction (the reason TBC needs per-lane-addressable register files and
/// still cannot fix strided patterns like 0xAAAA repeated across warps,
/// §3.2).
///
/// # Examples
///
/// ```
/// use iwc_compaction::compact_masks;
/// use iwc_isa::ExecMask;
///
/// // Complementary halves merge into one full warp...
/// let merged = compact_masks(&[ExecMask::new(0x00FF, 16), ExecMask::new(0xFF00, 16)]);
/// assert_eq!(merged.masks.len(), 1);
///
/// // ...but repeated strided masks cannot compact at all (lane conflicts).
/// let stuck = compact_masks(&[ExecMask::new(0xAAAA, 16); 4]);
/// assert_eq!(stuck.masks.len(), 4);
/// ```
pub fn compact_masks(group: &[ExecMask]) -> CompactedGroup {
    assert!(!group.is_empty(), "empty warp group");
    let width = group[0].width();
    assert!(
        group.iter().all(|m| m.width() == width),
        "mixed SIMD widths in a warp group"
    );
    // Per lane, the list of source warps with that lane active.
    let mut per_lane: Vec<Vec<u32>> = (0..width)
        .map(|lane| {
            group
                .iter()
                .enumerate()
                .filter(|(_, m)| m.channel(lane))
                .map(|(w, _)| w as u32)
                .collect()
        })
        .collect();
    let out_warps = per_lane.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let mut masks = Vec::with_capacity(out_warps);
    let mut origin = Vec::with_capacity(out_warps);
    for _ in 0..out_warps {
        let mut m = ExecMask::none(width);
        let mut org = vec![None; width as usize];
        for lane in 0..width {
            if let Some(src) = per_lane[lane as usize].pop() {
                m = m.with_channel(lane, true);
                org[lane as usize] = Some(src);
            }
        }
        masks.push(m);
        origin.push(org);
    }
    CompactedGroup { masks, origin }
}

/// Comparison of intra-warp and inter-warp compaction over a group of
/// same-PC warps with per-channel memory addresses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InterWarpStats {
    /// Execution waves for the unmerged group under SCC (intra-warp).
    pub intra_warp_waves: u64,
    /// Execution waves for the merged group (full warps execute at
    /// `width/4` waves each).
    pub inter_warp_waves: u64,
    /// Distinct cache lines requested by the unmerged per-warp accesses.
    pub intra_warp_lines: u64,
    /// Distinct cache lines requested by the merged accesses.
    pub inter_warp_lines: u64,
}

impl InterWarpStats {
    /// Memory-divergence inflation factor of inter-warp compaction
    /// (≥ 1.0 when merging made memory behavior worse or equal).
    pub fn divergence_inflation(&self) -> f64 {
        if self.intra_warp_lines == 0 {
            1.0
        } else {
            self.inter_warp_lines as f64 / self.intra_warp_lines as f64
        }
    }
}

/// Evaluates one same-PC group of warps that each perform a memory access:
/// `addrs[w][lane]` is the byte address channel `lane` of warp `w` would
/// access (only active channels are accessed).
pub fn evaluate_group(group: &[ExecMask], addrs: &[Vec<u32>], line_bytes: u32) -> InterWarpStats {
    assert_eq!(group.len(), addrs.len(), "one address vector per warp");
    let compacted = compact_masks(group);

    let lines_of = |mask: &ExecMask, addr_of: &dyn Fn(u32) -> u32| -> u64 {
        let mut lines: Vec<u32> = mask
            .iter_active()
            .map(|l| addr_of(l) / line_bytes)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    };

    let mut stats = InterWarpStats::default();
    for (w, mask) in group.iter().enumerate() {
        stats.intra_warp_waves += u64::from(waves(*mask, CompactionMode::Scc));
        stats.intra_warp_lines += lines_of(mask, &|lane| addrs[w][lane as usize]);
    }
    for (w, mask) in compacted.masks.iter().enumerate() {
        stats.inter_warp_waves += u64::from(waves(*mask, CompactionMode::Baseline));
        stats.inter_warp_lines += lines_of(mask, &|lane| {
            let src = compacted.origin[w][lane as usize].expect("active lane has origin");
            addrs[src as usize][lane as usize]
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m16(bits: u32) -> ExecMask {
        ExecMask::new(bits, 16)
    }

    #[test]
    fn complementary_masks_merge_into_one_warp() {
        let c = compact_masks(&[m16(0x00FF), m16(0xFF00)]);
        assert_eq!(c.masks.len(), 1);
        assert!(c.masks[0].is_full());
        assert_eq!(c.origin[0][0], Some(0));
        assert_eq!(c.origin[0][15], Some(1));
    }

    #[test]
    fn lane_conflicts_bound_compaction() {
        // The same strided mask across 4 warps cannot compact at all:
        // every active channel sits in the same lanes (§3.2's point that
        // TBC-like approaches preserve lane positions).
        let group = [m16(0xAAAA); 4];
        let c = compact_masks(&group);
        assert_eq!(c.masks.len(), 4);
        for m in &c.masks {
            assert_eq!(m.bits(), 0xAAAA);
        }
    }

    #[test]
    fn every_channel_preserved_exactly_once() {
        let group = [m16(0x0F0F), m16(0x00FF), m16(0x8001)];
        let c = compact_masks(&group);
        let total_in: u32 = group.iter().map(|m| m.active_channels()).sum();
        let total_out: u32 = c.masks.iter().map(|m| m.active_channels()).sum();
        assert_eq!(total_in, total_out);
        // Per lane, multiset of origins matches the sources.
        for lane in 0..16u32 {
            let mut srcs: Vec<u32> = c.origin.iter().filter_map(|o| o[lane as usize]).collect();
            srcs.sort_unstable();
            let want: Vec<u32> = group
                .iter()
                .enumerate()
                .filter(|(_, m)| m.channel(lane))
                .map(|(w, _)| w as u32)
                .collect();
            assert_eq!(srcs, want, "lane {lane}");
        }
    }

    #[test]
    fn merging_coherent_streams_increases_memory_divergence() {
        // Two half-warps whose accesses are each one contiguous line,
        // but in *different* lines: merged, the single warp touches both.
        let group = [m16(0x00FF), m16(0xFF00)];
        let mut a0 = vec![0u32; 16];
        let mut a1 = vec![0u32; 16];
        for (l, a) in a0.iter_mut().enumerate().take(8) {
            *a = 4096 + 4 * l as u32; // line A
        }
        for (l, a) in a1.iter_mut().enumerate().skip(8) {
            *a = 8192 + 4 * l as u32; // line B
        }
        let s = evaluate_group(&group, &[a0, a1], 64);
        // Intra-warp: each partial warp = 1 line and 2 SCC waves total.
        assert_eq!(s.intra_warp_lines, 2);
        assert_eq!(s.intra_warp_waves, 4);
        // Inter-warp: one full warp, 4 waves — but the access still needs
        // both lines in one message: same lines, fewer waves.
        assert_eq!(s.inter_warp_waves, 4);
        assert_eq!(s.inter_warp_lines, 2);
        assert_eq!(s.divergence_inflation(), 1.0);
    }

    #[test]
    fn merging_aligned_streams_costs_lines_per_message() {
        // Two warps, each accessing its own single line with the SAME mask
        // lanes 0-7: no merge possible for those lanes → masks can't merge,
        // divergence unchanged. Use disjoint lanes but same line stride to
        // see inflation: merged message spans both source warps' lines while
        // each unmerged SCC warp still issued its own message.
        let group = [m16(0x000F), m16(0x00F0)];
        let a0: Vec<u32> = (0..16).map(|l| 4096 + 4 * l as u32).collect();
        let a1: Vec<u32> = (0..16).map(|l| 8192 + 4 * l as u32).collect();
        let s = evaluate_group(&group, &[a0, a1], 64);
        assert_eq!(s.intra_warp_waves, 2);
        assert_eq!(
            s.inter_warp_waves, 4,
            "merged warp is still one full-length warp"
        );
        assert_eq!(s.intra_warp_lines, 2);
        assert_eq!(s.inter_warp_lines, 2);
    }

    #[test]
    #[should_panic(expected = "mixed SIMD widths")]
    fn rejects_mixed_widths() {
        let _ = compact_masks(&[ExecMask::all(8), ExecMask::all(16)]);
    }
}
