//! # iwc-compaction
//!
//! The core contribution of *"SIMD Divergence Optimization through
//! Intra-Warp Compaction"* (Vaidya, Shayesteh, Woo, Saharoy, Azimi —
//! ISCA 2013): execution-cycle compression for SIMD instructions with
//! disabled channels, implemented as two micro-architectural techniques.
//!
//! * **BCC** (basic cycle compression) skips the pipeline wave of any
//!   aligned quad (4 channels) that is entirely disabled, together with its
//!   operand fetches and write-back ([`cycles`], [`microop`]).
//! * **SCC** (swizzled cycle compression) permutes channel positions through
//!   the operand crossbar so enabled channels pack into ⌈active/4⌉ waves
//!   ([`scc`] implements the control algorithm of Fig. 6 verbatim).
//!
//! The crate also models the limited half-width optimization present in real
//! Ivy Bridge hardware (the paper's reporting baseline), the register-file
//! organizations of Fig. 5 ([`rf`]), and aggregate accounting used by the
//! simulator and trace analyzer ([`tally`]).
//!
//! # Examples
//!
//! ```
//! use iwc_compaction::{execution_cycles, CompactionMode, SccSchedule};
//! use iwc_isa::{DataType, ExecMask};
//!
//! // The Fig. 4(b) pattern: BCC can't help, SCC halves the cycles.
//! let mask = ExecMask::new(0xAAAA, 16);
//! assert_eq!(execution_cycles(mask, DataType::F, CompactionMode::Bcc), 4);
//! assert_eq!(execution_cycles(mask, DataType::F, CompactionMode::Scc), 2);
//!
//! let schedule = SccSchedule::compute(mask);
//! schedule.validate().expect("every active channel issued exactly once");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cycles;
pub mod energy;
pub mod engine;
pub mod interwarp;
pub mod microop;
pub mod rf;
pub mod scc;
pub mod tally;

pub use cycles::{execution_cycles, waves, waves_typed, CompactionMode, CycleBreakdown};
pub use energy::EnergyModel;
pub use engine::{
    engine_of, BaselineEngine, BccEngine, CompactionEngine, EngineId, EngineRegistry, EngineTally,
    IvyBridgeEngine, SccEngine, SccLimited,
};
pub use interwarp::{compact_masks, evaluate_group, CompactedGroup, InterWarpStats};
pub use microop::{expand, Expansion, MicroOp, RegHalf};
pub use rf::{RfModel, RfOrganization};
pub use scc::{CrossbarControl, LaneSlot, QuadSwizzle, SccCost, SccSchedule, MAX_SCC_CYCLES};
pub use tally::{CompactionTally, TallyDelta, TallyMemo, UtilBucket};
