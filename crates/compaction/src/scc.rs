//! SCC control logic: computing swizzle and lane-enable settings.
//!
//! This module is a faithful Rust implementation of the C pseudo-code in
//! Fig. 6 of the paper, which derives, for each compressed execution cycle,
//! which (quad, lane) element feeds each of the four hardware ALU lanes and
//! whether it arrives *directly* (its home lane) or *swizzled* from a
//! different lane of its quad.
//!
//! The algorithm minimizes intra-quad lane swizzles: a hardware lane `n`
//! first drains its own queue of quads that have channel `n` active
//! (`a_ln_q[n]`); only when that queue is empty does it borrow ("swizzle
//! from") a *surplus* lane — one whose queue is longer than the optimal cycle
//! count. The worked example of Fig. 7 (mask `0xAAAA`) is reproduced in the
//! tests below.
//!
//! # Fast path
//!
//! Real hardware evaluates these settings between decode and issue, so the
//! simulator hits [`SccSchedule::compute`] once per executed instruction.
//! Two layers make that hit O(1):
//!
//! * the schedule itself is allocation-free — a fixed `[CycleSlots; 8]`
//!   array (8 = SIMD32 / 4 is the cycle-count ceiling), making
//!   [`SccSchedule`] `Copy`;
//! * schedules are memoized process-wide: widths ≤ 16 share a lazy
//!   65,536-entry table behind a [`OnceLock`] (the schedule for a given bit
//!   pattern is width-independent — empty high quads contribute nothing),
//!   and SIMD32 masks go through a bounded per-thread cache.
//!
//! [`SccSchedule::compute_reference`] keeps the original literal
//! transcription of Fig. 6 (per-lane `VecDeque`s); the equivalence of the
//! two implementations is enforced exhaustively over all SIMD16 masks in
//! `crates/compaction/tests/scc_cache.rs`.

use iwc_isa::mask::{ExecMask, QUAD};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::OnceLock;

/// What one hardware ALU lane executes in one compressed cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneSlot {
    /// The lane is idle this cycle (no surplus work to fill it).
    Disabled,
    /// The lane executes channel `quad*4 + n` of the instruction, where `n`
    /// is this hardware lane — its home position; no swizzle needed.
    Direct {
        /// Source quad index.
        quad: u8,
    },
    /// The lane executes channel `quad*4 + from_lane`, routed across the
    /// intra-quad crossbar from position `from_lane` to this lane.
    Swizzled {
        /// Source quad index.
        quad: u8,
        /// Home lane position of the channel within its quad.
        from_lane: u8,
    },
}

impl LaneSlot {
    /// The absolute channel index this slot executes, if enabled.
    pub fn channel(self, hw_lane: u8) -> Option<u32> {
        match self {
            Self::Disabled => None,
            Self::Direct { quad } => Some(u32::from(quad) * QUAD + u32::from(hw_lane)),
            Self::Swizzled { quad, from_lane } => {
                Some(u32::from(quad) * QUAD + u32::from(from_lane))
            }
        }
    }

    /// True when the slot required the swizzle crossbar.
    pub fn is_swizzled(self) -> bool {
        matches!(self, Self::Swizzled { .. })
    }
}

/// One compressed execution cycle: the four ALU lane assignments.
pub type CycleSlots = [LaneSlot; QUAD as usize];

/// Upper bound on compressed cycles per instruction (SIMD32 / 4).
pub const MAX_SCC_CYCLES: usize = (iwc_isa::mask::MAX_WIDTH / QUAD) as usize;

/// Crossbar settings of one source quad for one cycle (Fig. 5(c)): which
/// bus positions this quad drives and from which of its four input lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuadSwizzle {
    /// Bit `n` set: this quad drives wired-OR bus position `n`.
    pub enables: u8,
    /// `select[n]`: quad-internal input lane routed to bus position `n`
    /// (meaningful only where the enable bit is set).
    pub select: [u8; QUAD as usize],
}

impl QuadSwizzle {
    /// Routes this quad's four input values onto a 4-slot bus (None where
    /// this quad does not drive).
    pub fn route<T: Copy>(&self, inputs: [T; QUAD as usize]) -> [Option<T>; QUAD as usize] {
        let mut out = [None; QUAD as usize];
        for (n, slot) in out.iter_mut().enumerate() {
            if self.enables >> n & 1 == 1 {
                *slot = Some(inputs[self.select[n] as usize]);
            }
        }
        out
    }
}

/// Per-cycle crossbar control for every source quad.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarControl {
    /// One swizzle setting per source quad of the instruction.
    pub per_quad: Vec<QuadSwizzle>,
}

impl CrossbarControl {
    /// Drives the wired-OR bus: applies every quad's routing to per-quad
    /// input data and combines the outputs. Panics (in debug) when two
    /// quads drive the same position — a schedule-invariant violation.
    pub fn drive_bus<T: Copy>(
        &self,
        quad_inputs: &[[T; QUAD as usize]],
    ) -> [Option<T>; QUAD as usize] {
        assert_eq!(
            quad_inputs.len(),
            self.per_quad.len(),
            "one input vector per quad"
        );
        let mut bus = [None; QUAD as usize];
        for (q, swz) in self.per_quad.iter().enumerate() {
            for (n, v) in swz.route(quad_inputs[q]).into_iter().enumerate() {
                if let Some(v) = v {
                    debug_assert!(bus[n].is_none(), "bus contention at position {n}");
                    bus[n] = Some(v);
                }
            }
        }
        bus
    }
}

/// The complete SCC schedule for one instruction's execution mask.
///
/// Allocation-free and `Copy`: cycles live in a fixed array sized for the
/// SIMD32 worst case, so memoized schedules are returned by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SccSchedule {
    mask: ExecMask,
    cycles: [CycleSlots; MAX_SCC_CYCLES],
    len: u8,
    swizzle_count: u8,
    bcc_like: bool,
}

/// The O(1) cost summary of an SCC schedule: what per-instruction
/// accounting ([`crate::CompactionTally::add`], the simulator's issue path)
/// actually needs, without touching the per-cycle lane assignments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SccCost {
    /// Compressed execution cycles (= `waves(mask, Scc)`).
    pub cycles: u8,
    /// Channels routed through the swizzle crossbar.
    pub swizzles: u8,
    /// True when empty-quad skipping sufficed (no swizzle hardware used).
    pub bcc_like: bool,
}

impl SccCost {
    /// The SCC cost for `mask`, served from the schedule memo tables.
    pub fn of(mask: ExecMask) -> Self {
        let s = SccSchedule::compute(mask);
        SccCost {
            cycles: s.len,
            swizzles: s.swizzle_count,
            bcc_like: s.bcc_like,
        }
    }
}

/// Lazy process-wide table of schedules for all bit patterns of widths ≤ 16.
///
/// The Fig. 6 algorithm only looks at per-quad bit groups, and a quad with
/// no active channels contributes nothing to any queue, so the schedule for
/// a bit pattern is identical for every width ≤ 16; one 2^16-entry table
/// serves them all (the stored `mask` is fixed up on retrieval).
fn simd16_table() -> &'static [OnceLock<SccSchedule>] {
    static TABLE: OnceLock<Box<[OnceLock<SccSchedule>]>> = OnceLock::new();
    TABLE.get_or_init(|| (0..=u16::MAX as usize).map(|_| OnceLock::new()).collect())
}

/// Bounded per-thread cache for SIMD32 schedules (2^32 bit patterns rule
/// out an exhaustive table). Cleared wholesale when full: real instruction
/// streams cycle through a small working set of masks, so a reset is rare
/// and the next few instructions simply repopulate it.
const SIMD32_CACHE_CAP: usize = 1 << 13;

thread_local! {
    static SIMD32_CACHE: RefCell<HashMap<u32, SccSchedule>> =
        RefCell::new(HashMap::with_capacity(1024));
}

impl SccSchedule {
    /// Computes the SCC settings for `mask` (Fig. 6 algorithm), served from
    /// the process-wide memo tables (see the module docs).
    ///
    /// An all-disabled mask yields a single fully-disabled cycle (the
    /// instruction still flows down the pipe).
    pub fn compute(mask: ExecMask) -> Self {
        if mask.width() <= 16 {
            let entry = simd16_table()[mask.bits() as usize]
                .get_or_init(|| Self::compute_uncached(ExecMask::new(mask.bits(), 16)));
            let mut s = *entry;
            s.mask = mask;
            s
        } else {
            SIMD32_CACHE.with(|cache| {
                let mut cache = cache.borrow_mut();
                if let Some(s) = cache.get(&mask.bits()) {
                    return *s;
                }
                let s = Self::compute_uncached(mask);
                if cache.len() >= SIMD32_CACHE_CAP {
                    cache.clear();
                }
                cache.insert(mask.bits(), s);
                s
            })
        }
    }

    /// Computes the SCC settings for `mask` without consulting the memo
    /// tables. Allocation-free: per-lane quad queues are fixed arrays.
    pub fn compute_uncached(mask: ExecMask) -> Self {
        let quad_count = mask.quad_count();
        // Optimal cycles: ceil(active lanes / 4), at least 1.
        let a_ln_cnt = mask.active_channels();
        let o_cyc_cnt = a_ln_cnt.div_ceil(QUAD).max(1);
        // Active quad count (the BCC cycle count).
        let a_q_cnt = mask.active_quads().max(1);

        let mut cycles = [[LaneSlot::Disabled; QUAD as usize]; MAX_SCC_CYCLES];

        if a_q_cnt == o_cyc_cnt {
            // "skip empty quads, BCC-like. Done" — no swizzling required:
            // iterate active quads in order, enabling each quad's own lanes.
            let mut len = 0u8;
            if mask.is_empty() {
                len = 1; // the single all-disabled cycle is already in place
            } else {
                for q in 0..quad_count {
                    let bits = mask.quad_bits(q);
                    if bits == 0 {
                        continue;
                    }
                    let slots = &mut cycles[len as usize];
                    for (n, slot) in slots.iter_mut().enumerate() {
                        if bits >> n & 1 == 1 {
                            *slot = LaneSlot::Direct { quad: q as u8 };
                        }
                    }
                    len += 1;
                }
            }
            return Self {
                mask,
                cycles,
                len,
                swizzle_count: 0,
                bcc_like: true,
            };
        }

        // a_ln_q[n]: queue of quads with lane n active, as a fixed ring-free
        // array (a lane sees each of the ≤ 8 quads at most once).
        let mut a_ln_q = [[0u8; MAX_SCC_CYCLES]; QUAD as usize];
        let mut q_len = [0u8; QUAD as usize];
        let mut q_head = [0u8; QUAD as usize];
        for q in 0..quad_count {
            let bits = mask.quad_bits(q);
            for n in 0..QUAD as usize {
                if bits >> n & 1 == 1 {
                    a_ln_q[n][q_len[n] as usize] = q as u8;
                    q_len[n] += 1;
                }
            }
        }

        // Initial setup: per-lane surplus over the optimal cycle count.
        let mut surplus = [0u32; QUAD as usize];
        let mut tot_surplus = 0u32;
        for n in 0..QUAD as usize {
            let len = u32::from(q_len[n]);
            if len > o_cyc_cnt {
                surplus[n] = len - o_cyc_cnt;
                tot_surplus += surplus[n];
            }
        }

        // Per cycle, fill each hardware lane: own queue first, then borrow
        // from a surplus lane via the crossbar.
        let mut swizzle_count = 0u8;
        for slots in cycles.iter_mut().take(o_cyc_cnt as usize) {
            for n in 0..QUAD as usize {
                if q_head[n] < q_len[n] {
                    slots[n] = LaneSlot::Direct {
                        quad: a_ln_q[n][q_head[n] as usize],
                    };
                    q_head[n] += 1;
                } else if tot_surplus != 0 {
                    // Find a surplus lane m and steal its front element.
                    if let Some(m) =
                        (0..QUAD as usize).find(|&m| surplus[m] > 0 && q_head[m] < q_len[m])
                    {
                        let q = a_ln_q[m][q_head[m] as usize];
                        q_head[m] += 1;
                        slots[n] = LaneSlot::Swizzled {
                            quad: q,
                            from_lane: m as u8,
                        };
                        surplus[m] -= 1;
                        tot_surplus -= 1;
                        swizzle_count += 1;
                    }
                }
                // else: no surplus, lane not filled (stays Disabled).
            }
        }
        Self {
            mask,
            cycles,
            len: o_cyc_cnt as u8,
            swizzle_count,
            bcc_like: false,
        }
    }

    /// The original literal transcription of the Fig. 6 pseudo-code
    /// (per-lane `VecDeque` queues, heap-allocated cycle list). Kept as the
    /// reference implementation the fast path is tested against.
    pub fn compute_reference(mask: ExecMask) -> Self {
        let quad_count = mask.quad_count();
        let a_ln_cnt = mask.active_channels();
        let o_cyc_cnt = a_ln_cnt.div_ceil(QUAD).max(1);
        let a_q_cnt = mask.active_quads().max(1);

        // a_ln_q[n]: queue of quads with lane n active.
        let mut a_ln_q: [VecDeque<u8>; QUAD as usize] = Default::default();
        for q in 0..quad_count {
            let bits = mask.quad_bits(q);
            for n in 0..QUAD {
                if bits >> n & 1 == 1 {
                    a_ln_q[n as usize].push_back(q as u8);
                }
            }
        }

        if a_q_cnt == o_cyc_cnt {
            let mut cycles = Vec::with_capacity(o_cyc_cnt as usize);
            if mask.is_empty() {
                cycles.push([LaneSlot::Disabled; QUAD as usize]);
            } else {
                for q in 0..quad_count {
                    let bits = mask.quad_bits(q);
                    if bits == 0 {
                        continue;
                    }
                    let mut slots = [LaneSlot::Disabled; QUAD as usize];
                    for (n, slot) in slots.iter_mut().enumerate() {
                        if bits >> n & 1 == 1 {
                            *slot = LaneSlot::Direct { quad: q as u8 };
                        }
                    }
                    cycles.push(slots);
                }
            }
            return Self::from_cycle_list(mask, &cycles, 0, true);
        }

        let mut surplus = [0u32; QUAD as usize];
        let mut tot_surplus = 0u32;
        for n in 0..QUAD as usize {
            let len = a_ln_q[n].len() as u32;
            if len > o_cyc_cnt {
                surplus[n] = len - o_cyc_cnt;
                tot_surplus += surplus[n];
            }
        }

        let mut cycles = Vec::with_capacity(o_cyc_cnt as usize);
        let mut swizzle_count = 0u32;
        for _c in 0..o_cyc_cnt {
            let mut slots = [LaneSlot::Disabled; QUAD as usize];
            for n in 0..QUAD as usize {
                if let Some(q) = a_ln_q[n].pop_front() {
                    slots[n] = LaneSlot::Direct { quad: q };
                } else if tot_surplus != 0 {
                    if let Some(m) =
                        (0..QUAD as usize).find(|&m| surplus[m] > 0 && !a_ln_q[m].is_empty())
                    {
                        let q = a_ln_q[m].pop_front().expect("surplus lane has work");
                        slots[n] = LaneSlot::Swizzled {
                            quad: q,
                            from_lane: m as u8,
                        };
                        surplus[m] -= 1;
                        tot_surplus -= 1;
                        swizzle_count += 1;
                    }
                }
            }
            cycles.push(slots);
        }
        Self::from_cycle_list(mask, &cycles, swizzle_count, false)
    }

    /// Builds a schedule from an explicit cycle list — the constructor the
    /// engine layer's alternative schedulers (e.g. distance-limited
    /// swizzling) use. Callers are responsible for the issue invariants;
    /// [`Self::validate_issue`] checks them.
    pub(crate) fn from_cycle_list(
        mask: ExecMask,
        list: &[CycleSlots],
        swizzles: u32,
        bcc_like: bool,
    ) -> Self {
        let mut cycles = [[LaneSlot::Disabled; QUAD as usize]; MAX_SCC_CYCLES];
        cycles[..list.len()].copy_from_slice(list);
        Self {
            mask,
            cycles,
            len: u8::try_from(list.len()).expect("cycle count fits the fixed array"),
            swizzle_count: u8::try_from(swizzles).expect("at most one swizzle per channel"),
            bcc_like,
        }
    }

    /// The mask the schedule was computed for.
    pub fn mask(&self) -> ExecMask {
        self.mask
    }

    /// Number of compressed execution cycles (= `waves(mask, Scc)`).
    pub fn cycle_count(&self) -> u32 {
        u32::from(self.len)
    }

    /// Per-cycle lane assignments.
    pub fn cycles(&self) -> &[CycleSlots] {
        &self.cycles[..self.len as usize]
    }

    /// Number of channels routed through the swizzle crossbar.
    pub fn swizzle_count(&self) -> u32 {
        u32::from(self.swizzle_count)
    }

    /// True when empty-quad skipping sufficed and no swizzle was needed
    /// (the "BCC-like" early exit of Fig. 6).
    pub fn is_bcc_like(&self) -> bool {
        self.bcc_like
    }

    /// The channels issued in cycle `c`, in hardware-lane order.
    pub fn issued_channels(&self, c: usize) -> Vec<Option<u32>> {
        self.cycles()[c]
            .iter()
            .enumerate()
            .map(|(n, s)| s.channel(n as u8))
            .collect()
    }

    /// The inverse permutation needed at write-back: for each compressed
    /// cycle, maps hardware lane `n` back to the channel's home lane within
    /// its quad (`(quad, home_lane)` pairs). Unswizzle settings are "simply
    /// the inverse permutation of the operand swizzle settings" (§4.2).
    pub fn unswizzle(&self, c: usize) -> Vec<Option<(u8, u8)>> {
        self.cycles()[c]
            .iter()
            .enumerate()
            .map(|(n, s)| match *s {
                LaneSlot::Disabled => None,
                LaneSlot::Direct { quad } => Some((quad, n as u8)),
                LaneSlot::Swizzled { quad, from_lane } => Some((quad, from_lane)),
            })
            .collect()
    }

    /// Hardware control words for the Fig. 5(c) operand datapath: in each
    /// compressed cycle, every source quad owns a 4-lane crossbar whose
    /// outputs load a wired-OR bus feeding the ALU. `per_quad[q].select[n]`
    /// names the quad-internal input lane that quad `q` drives onto bus
    /// position `n` when `per_quad[q].enables` has bit `n` set. By
    /// construction, at most one quad drives each bus position per cycle.
    pub fn crossbar_controls(&self) -> Vec<CrossbarControl> {
        let quads = self.mask.quad_count() as usize;
        self.cycles()
            .iter()
            .map(|slots| {
                let mut per_quad = vec![QuadSwizzle::default(); quads];
                for (n, slot) in slots.iter().enumerate() {
                    let (quad, from_lane) = match *slot {
                        LaneSlot::Disabled => continue,
                        LaneSlot::Direct { quad } => (quad, n as u8),
                        LaneSlot::Swizzled { quad, from_lane } => (quad, from_lane),
                    };
                    let q = &mut per_quad[quad as usize];
                    q.enables |= 1 << n;
                    q.select[n] = from_lane;
                }
                CrossbarControl { per_quad }
            })
            .collect()
    }

    /// Validates the issue invariants every schedule must satisfy,
    /// regardless of how it was produced:
    ///
    /// 1. every active channel of the mask is issued exactly once;
    /// 2. no disabled channel is ever issued.
    ///
    /// Distance-limited swizzle schedules (the engine layer's `SccLimited`)
    /// satisfy these but may legitimately exceed the ⌈active/4⌉ cycle
    /// optimum; use [`Self::validate`] when optimality is also required.
    ///
    /// Returns an error string describing the first violation.
    pub fn validate_issue(&self) -> Result<(), String> {
        let mut seen = vec![0u32; self.mask.width() as usize];
        for (c, slots) in self.cycles().iter().enumerate() {
            for (n, slot) in slots.iter().enumerate() {
                if let Some(ch) = slot.channel(n as u8) {
                    if ch >= self.mask.width() {
                        return Err(format!("cycle {c}: channel {ch} out of range"));
                    }
                    if !self.mask.channel(ch) {
                        return Err(format!("cycle {c}: disabled channel {ch} issued"));
                    }
                    seen[ch as usize] += 1;
                }
            }
        }
        for (ch, &count) in seen.iter().enumerate() {
            let expected = u32::from(self.mask.channel(ch as u32));
            if count != expected {
                return Err(format!(
                    "channel {ch} issued {count} times, expected {expected}"
                ));
            }
        }
        // Trailing (unused) slots of the fixed array must stay all-disabled
        // so structural equality between schedules remains meaningful.
        for (c, slots) in self.cycles[self.len as usize..].iter().enumerate() {
            if slots.iter().any(|s| !matches!(s, LaneSlot::Disabled)) {
                return Err(format!(
                    "unused cycle slot {} not disabled",
                    self.len as usize + c
                ));
            }
        }
        Ok(())
    }

    /// Validates the full schedule invariants: [`Self::validate_issue`] plus
    /// cycle-count optimality — the cycle count equals ⌈active/4⌉ (or 1 for
    /// an empty mask).
    ///
    /// Returns an error string describing the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_issue()?;
        let want = self.mask.active_channels().div_ceil(QUAD).max(1);
        if self.cycle_count() != want {
            return Err(format!(
                "cycle count {} != optimal {want}",
                self.cycle_count()
            ));
        }
        Ok(())
    }
}

impl fmt::Display for SccSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SCC schedule for mask {} ({} cycles):",
            self.mask,
            self.cycle_count()
        )?;
        for (c, slots) in self.cycles().iter().enumerate() {
            write!(f, "  cycle {c}:")?;
            for (n, s) in slots.iter().enumerate() {
                match s {
                    LaneSlot::Disabled => write!(f, " [----]")?,
                    LaneSlot::Direct { quad } => write!(f, " [Q{quad}.L{n}]")?,
                    LaneSlot::Swizzled { quad, from_lane } => {
                        write!(f, " [Q{quad}.L{from_lane}>{n}]")?
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m16(bits: u32) -> ExecMask {
        ExecMask::new(bits, 16)
    }

    /// The worked example of Fig. 7: mask 0xAAAA (odd channels active).
    #[test]
    fn figure7_example() {
        let s = SccSchedule::compute(m16(0xAAAA));
        assert_eq!(s.cycle_count(), 2);
        assert!(!s.is_bcc_like());
        s.validate().unwrap();

        // Cycle 0: Q0.L1→L0, Q1.L1 direct, Q2.L1→L2, Q0.L3 direct.
        assert_eq!(
            s.cycles()[0],
            [
                LaneSlot::Swizzled {
                    quad: 0,
                    from_lane: 1
                },
                LaneSlot::Direct { quad: 1 },
                LaneSlot::Swizzled {
                    quad: 2,
                    from_lane: 1
                },
                LaneSlot::Direct { quad: 0 },
            ]
        );
        // Cycle 1: Q1.L3→L0, Q3.L1 direct, Q2.L3→L2, Q3.L3 direct.
        assert_eq!(
            s.cycles()[1],
            [
                LaneSlot::Swizzled {
                    quad: 1,
                    from_lane: 3
                },
                LaneSlot::Direct { quad: 3 },
                LaneSlot::Swizzled {
                    quad: 2,
                    from_lane: 3
                },
                LaneSlot::Direct { quad: 3 },
            ]
        );
        assert_eq!(s.swizzle_count(), 4);
    }

    #[test]
    fn figure7_issued_channels() {
        let s = SccSchedule::compute(m16(0xAAAA));
        // Cycle 0 issues channels 1 (Q0.L1), 5 (Q1.L1), 9 (Q2.L1), 3 (Q0.L3).
        assert_eq!(
            s.issued_channels(0),
            vec![Some(1), Some(5), Some(9), Some(3)]
        );
        assert_eq!(
            s.issued_channels(1),
            vec![Some(7), Some(13), Some(11), Some(15)]
        );
    }

    #[test]
    fn bcc_like_early_exit() {
        // 0xF00F: 2 active quads, 8 active channels → optimal = 2 = active
        // quads: no swizzling needed.
        let s = SccSchedule::compute(m16(0xF00F));
        assert!(s.is_bcc_like());
        assert_eq!(s.cycle_count(), 2);
        assert_eq!(s.swizzle_count(), 0);
        s.validate().unwrap();
        assert_eq!(
            s.issued_channels(0),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
        assert_eq!(
            s.issued_channels(1),
            vec![Some(12), Some(13), Some(14), Some(15)]
        );
    }

    #[test]
    fn full_mask_identity_schedule() {
        let s = SccSchedule::compute(ExecMask::all(16));
        assert_eq!(s.cycle_count(), 4);
        assert!(s.is_bcc_like());
        s.validate().unwrap();
    }

    #[test]
    fn empty_mask_one_disabled_cycle() {
        let s = SccSchedule::compute(ExecMask::none(16));
        assert_eq!(s.cycle_count(), 1);
        assert_eq!(s.cycles()[0], [LaneSlot::Disabled; 4]);
        s.validate().unwrap();
    }

    #[test]
    fn single_channel_masks() {
        for ch in 0..16 {
            let s = SccSchedule::compute(ExecMask::none(16).with_channel(ch, true));
            assert_eq!(s.cycle_count(), 1, "channel {ch}");
            s.validate().unwrap();
        }
    }

    #[test]
    fn strided_0x1111_packs_into_one_cycle() {
        // One active channel per quad, all in lane 0: lane 0 has 4 queued
        // quads, optimal is 1 cycle → 3 channels must swizzle to lanes 1-3.
        let s = SccSchedule::compute(m16(0x1111));
        assert_eq!(s.cycle_count(), 1);
        assert_eq!(s.swizzle_count(), 3);
        s.validate().unwrap();
        let issued: Vec<_> = s.issued_channels(0).into_iter().flatten().collect();
        let mut sorted = issued.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 4, 8, 12]);
    }

    #[test]
    fn uneven_mask_leaves_disabled_slots() {
        // 5 active channels → 2 cycles, 3 disabled slots in the second.
        let s = SccSchedule::compute(m16(0b11111));
        assert_eq!(s.cycle_count(), 2);
        s.validate().unwrap();
        let disabled: usize = s
            .cycles()
            .iter()
            .flat_map(|c| c.iter())
            .filter(|s| matches!(s, LaneSlot::Disabled))
            .count();
        assert_eq!(disabled, 3);
    }

    #[test]
    fn unswizzle_is_inverse() {
        let s = SccSchedule::compute(m16(0xAAAA));
        for c in 0..s.cycle_count() as usize {
            let issued = s.issued_channels(c);
            let un = s.unswizzle(c);
            for (n, (ch, back)) in issued.iter().zip(un.iter()).enumerate() {
                match (ch, back) {
                    (Some(ch), Some((quad, lane))) => {
                        assert_eq!(
                            u32::from(*quad) * 4 + u32::from(*lane),
                            *ch,
                            "cycle {c} hw lane {n}"
                        );
                    }
                    (None, None) => {}
                    other => panic!("mismatched slot {other:?}"),
                }
            }
        }
    }

    #[test]
    fn crossbar_controls_route_correct_channels() {
        // Tag every channel with its absolute index; the bus must carry
        // exactly the channels the schedule says it issues.
        for bits in [0xAAAAu32, 0x1111, 0xF0F0, 0x8421, 0x001F, 0xFFFF] {
            let mask = m16(bits);
            let sched = SccSchedule::compute(mask);
            let controls = sched.crossbar_controls();
            assert_eq!(controls.len(), sched.cycle_count() as usize);
            let quad_inputs: Vec<[u32; 4]> = (0..mask.quad_count())
                .map(|q| [q * 4, q * 4 + 1, q * 4 + 2, q * 4 + 3])
                .collect();
            for (c, ctrl) in controls.iter().enumerate() {
                let bus = ctrl.drive_bus(&quad_inputs);
                let want = sched.issued_channels(c);
                for (n, (got, want)) in bus.iter().zip(want.iter()).enumerate() {
                    assert_eq!(got, want, "mask {bits:#06x} cycle {c} position {n}");
                }
            }
        }
    }

    #[test]
    fn bcc_like_controls_are_identity() {
        let sched = SccSchedule::compute(m16(0xF00F));
        for ctrl in sched.crossbar_controls() {
            for swz in &ctrl.per_quad {
                for n in 0..4usize {
                    if swz.enables >> n & 1 == 1 {
                        assert_eq!(swz.select[n], n as u8, "no swizzle needed");
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_simd8_validation() {
        for bits in 0..=0xFFu32 {
            let s = SccSchedule::compute(ExecMask::new(bits, 8));
            s.validate()
                .unwrap_or_else(|e| panic!("mask {bits:#x}: {e}"));
        }
    }

    #[test]
    fn schedule_matches_waves_model() {
        use crate::cycles::{waves, CompactionMode};
        for bits in (0..=0xFFFFu32).step_by(37) {
            let m = m16(bits);
            let s = SccSchedule::compute(m);
            assert_eq!(
                s.cycle_count(),
                waves(m, CompactionMode::Scc),
                "mask {bits:#x}"
            );
        }
    }

    #[test]
    fn memoized_schedule_carries_caller_mask_and_width() {
        // The ≤16 table is shared across widths; the returned schedule must
        // still report the caller's mask.
        let m8 = ExecMask::new(0x2D, 8);
        let s8 = SccSchedule::compute(m8);
        assert_eq!(s8.mask(), m8);
        s8.validate().unwrap();
        let m16 = ExecMask::new(0x2D, 16);
        let s16 = SccSchedule::compute(m16);
        assert_eq!(s16.mask(), m16);
        assert_eq!(s8.cycles(), s16.cycles(), "width-independent schedule");
    }

    #[test]
    fn cost_matches_schedule() {
        for bits in (0..=0xFFFFu32).step_by(97) {
            let m = m16(bits);
            let cost = SccCost::of(m);
            let s = SccSchedule::compute_reference(m);
            assert_eq!(u32::from(cost.cycles), s.cycle_count(), "mask {bits:#x}");
            assert_eq!(
                u32::from(cost.swizzles),
                s.swizzle_count(),
                "mask {bits:#x}"
            );
            assert_eq!(cost.bcc_like, s.is_bcc_like(), "mask {bits:#x}");
        }
    }

    #[test]
    fn simd32_cached_equals_uncached() {
        // Hit the per-thread SIMD32 cache twice to cover both paths.
        for bits in [0xDEAD_BEEFu32, 0x0000_0001, 0xFFFF_FFFF, 0x8080_8080] {
            let m = ExecMask::new(bits, 32);
            let first = SccSchedule::compute(m);
            let second = SccSchedule::compute(m);
            assert_eq!(first, second);
            assert_eq!(first, SccSchedule::compute_uncached(m), "mask {bits:#010x}");
            first.validate().unwrap();
        }
    }
}
