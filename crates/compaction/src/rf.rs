//! Register-file organization models (Fig. 5 and §4.3 of the paper).
//!
//! The paper compares, with CACTI 5.x at 32 nm, the area of:
//!
//! * the baseline 128×256-bit single-ported register file (Fig. 5(a));
//! * the BCC register file split into two half-width (128-bit) banks with
//!   independent enables (Fig. 5(b)) — measured at **≈ +10 % area**;
//! * the SCC register file: wider (512-bit) but shorter rows plus four 4×4
//!   lane crossbars (Fig. 5(c));
//! * the 8-banked per-lane-addressable file required by inter-warp
//!   techniques (TBC/DWF) — measured at **> +40 % area**.
//!
//! Without silicon models, this module provides an *analytic proxy* that
//! reproduces those ratios from first-order structure (bank count, decoder
//! overhead per bank, sense-amp width, crossbar cost), documented in
//! DESIGN.md as a substitution. The absolute numbers are arbitrary units;
//! the ordering and rough magnitudes are the reproduced claims.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Register-file organization variants studied in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RfOrganization {
    /// 128 × 256b, single bank, single ported (Fig. 5(a)).
    Baseline,
    /// 2 half-width banks of 128 × 128b with independent enables (Fig. 5(b)).
    Bcc,
    /// 64 × 512b wide rows + 512b operand latch + four 4×4 crossbars
    /// (Fig. 5(c)).
    Scc,
    /// 8 banks, per-lane addressable, as required by inter-warp compaction
    /// (TBC, DWF, large-warp microarchitecture).
    InterWarp,
}

/// First-order area/energy model of one register file organization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RfModel {
    /// Organization modeled.
    pub org: RfOrganization,
    /// Number of independently addressable banks.
    pub banks: u32,
    /// Row width per bank in bits.
    pub row_bits: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Crossbar lane count (0 when no swizzle network is present).
    pub crossbar_lanes: u32,
}

/// Total storage bits of the modeled file (128 × 256b), constant across
/// organizations.
pub const RF_STORAGE_BITS: u32 = 128 * 256;

impl RfModel {
    /// Model parameters for each organization.
    ///
    /// # Examples
    ///
    /// ```
    /// use iwc_compaction::{RfModel, RfOrganization};
    ///
    /// // §4.3: the BCC register file costs ~10% area over the baseline.
    /// let overhead = RfModel::new(RfOrganization::Bcc).area_overhead_vs_baseline();
    /// assert!(overhead > 0.05 && overhead < 0.15);
    /// ```
    pub fn new(org: RfOrganization) -> Self {
        match org {
            RfOrganization::Baseline => Self {
                org,
                banks: 1,
                row_bits: 256,
                rows: 128,
                crossbar_lanes: 0,
            },
            RfOrganization::Bcc => Self {
                org,
                banks: 2,
                row_bits: 128,
                rows: 128,
                crossbar_lanes: 0,
            },
            RfOrganization::Scc => Self {
                org,
                banks: 1,
                row_bits: 512,
                rows: 64,
                crossbar_lanes: 16,
            },
            RfOrganization::InterWarp => Self {
                org,
                banks: 8,
                row_bits: 32,
                rows: 128,
                crossbar_lanes: 32,
            },
        }
    }

    /// Relative area in arbitrary units.
    ///
    /// Components: storage cells (constant), per-bank decoder/periphery
    /// (grows with bank count and row count), sense amps / drivers (scale
    /// with total row width across banks), and crossbar wiring (quadratic in
    /// lane count of each 4-wide crossbar, linear in crossbar count).
    pub fn area(&self) -> f64 {
        let storage = f64::from(RF_STORAGE_BITS);
        // Decoder + wordline periphery per bank: a fixed per-bank overhead
        // plus a row-decoder term, independent of row width — which is why
        // many narrow banks (the inter-warp organization) are so expensive
        // per bit. Constants calibrated so BCC ≈ +10%, 8-bank > +40%.
        let per_bank = 1500.0 + 14.0 * f64::from(self.rows);
        let periphery = f64::from(self.banks) * per_bank;
        // Sense amps and bitline drivers scale with the total accessed width.
        let width_cost = 2.0 * f64::from(self.banks * self.row_bits);
        // Crossbars: each 4-lane 32b crossbar costs ~4×4 pass-gate groups.
        let crossbar = 90.0 * f64::from(self.crossbar_lanes);
        storage + periphery + width_cost + crossbar
    }

    /// Area overhead of this organization relative to the baseline.
    pub fn area_overhead_vs_baseline(&self) -> f64 {
        let base = RfModel::new(RfOrganization::Baseline).area();
        self.area() / base - 1.0
    }

    /// Relative dynamic energy of one operand access (arbitrary units):
    /// proportional to the bits actually fetched.
    pub fn access_energy(&self, bits_fetched: u32) -> f64 {
        let bitline = f64::from(bits_fetched) * 1.0;
        let decode = 12.0 * f64::from(self.banks).log2().max(1.0);
        bitline + decode
    }
}

impl fmt::Display for RfModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}: {} bank(s) x {} rows x {}b (+{:.1}% area vs baseline)",
            self.org,
            self.banks,
            self.rows,
            self.row_bits,
            100.0 * self.area_overhead_vs_baseline()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_preserved_across_organizations() {
        for org in [
            RfOrganization::Baseline,
            RfOrganization::Bcc,
            RfOrganization::Scc,
            RfOrganization::InterWarp,
        ] {
            let m = RfModel::new(org);
            assert_eq!(m.banks * m.row_bits * m.rows, RF_STORAGE_BITS, "{org:?}");
        }
    }

    #[test]
    fn bcc_overhead_near_ten_percent() {
        let o = RfModel::new(RfOrganization::Bcc).area_overhead_vs_baseline();
        assert!(
            (0.05..0.15).contains(&o),
            "BCC overhead {o:.3} should be ~10%"
        );
    }

    #[test]
    fn interwarp_overhead_exceeds_forty_percent() {
        let o = RfModel::new(RfOrganization::InterWarp).area_overhead_vs_baseline();
        assert!(o > 0.40, "inter-warp overhead {o:.3} should exceed 40%");
    }

    #[test]
    fn ordering_baseline_bcc_scc_interwarp() {
        let base = RfModel::new(RfOrganization::Baseline).area();
        let bcc = RfModel::new(RfOrganization::Bcc).area();
        let scc = RfModel::new(RfOrganization::Scc).area();
        let iw = RfModel::new(RfOrganization::InterWarp).area();
        assert!(base < bcc, "half-banking costs area");
        assert!(bcc < iw, "8-bank per-lane file is the most expensive");
        assert!(scc < iw, "SCC file is cheaper than inter-warp");
    }

    #[test]
    fn half_fetch_saves_energy() {
        let m = RfModel::new(RfOrganization::Bcc);
        assert!(m.access_energy(128) < m.access_energy(256));
    }
}
