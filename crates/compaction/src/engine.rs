//! The pluggable compaction-engine layer.
//!
//! Every divergence-optimization design point the repo evaluates — the four
//! modes of the paper plus ablation variants — is expressed as one object
//! implementing [`CompactionEngine`]: the cycle count an instruction takes,
//! the micro-op issue set it expands to, the swizzle/unswizzle schedule it
//! programs into the operand crossbar, and the dynamic energy it charges.
//! The simulator, trace analyzer and benches consume engines (via
//! [`EngineId`] handles into the process-wide [`EngineRegistry`]) instead of
//! matching on [`CompactionMode`], so a new design point is added by writing
//! one `impl CompactionEngine` and registering it — no simulator or
//! harness changes.
//!
//! # The canonical ordering
//!
//! The registry seeds itself with the paper's four configurations in
//! weakest-to-strongest order — `base`, `ivb`, `bcc`, `scc` — and
//! [`EngineId::CANONICAL`] / [`EngineRegistry::canonical`] own that ordering
//! as the documented source of truth for every mode sweep (tables iterate
//! it, reports column-order by it). It coincides with
//! [`CompactionMode::ALL`] by construction and a unit test pins the two
//! together.
//!
//! # Distance-limited swizzling ([`SccLimited`])
//!
//! §4.3 of the paper notes the SCC operand crossbar is the dominant
//! hardware cost. [`SccLimited`] models a cheaper network in which a
//! hardware lane `n` may only borrow work from source lane `m` when
//! `|m − n| ≤ k`; `k = 0` degenerates to BCC-style quad skipping, `k = 3`
//! restores the full crossbar (and provably matches [`CompactionMode::Scc`]
//! cycle counts). It exists to prove the engine layer is extensible — it is
//! surfaced only through the registry and the `ablation_swizzle`
//! experiment, with zero changes to the simulator or trace crates.

use crate::cycles::CompactionMode;
use crate::energy::EnergyModel;
use crate::microop::{expand_quartiles, expand_scheduled, Expansion};
use crate::rf::{RfModel, RfOrganization};
use crate::scc::{LaneSlot, SccSchedule, MAX_SCC_CYCLES};
use iwc_isa::insn::Instruction;
use iwc_isa::mask::{ExecMask, QUAD};
use iwc_isa::types::DataType;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// One divergence-optimization design point: everything the pipeline model
/// needs to know about how an execution mask turns into issued work.
///
/// Implementations must be pure functions of the mask (plus the engine's own
/// configuration): the simulator assumes calling an engine twice with the
/// same mask yields the same answer.
pub trait CompactionEngine: Send + Sync + fmt::Debug {
    /// Short, unique label used in reports and registry lookups
    /// (`base`, `ivb`, `bcc`, `scc`, `scc-k1`, …).
    fn label(&self) -> &str;

    /// The [`CompactionMode`] this engine reproduces, when it is one of the
    /// paper's four configurations; `None` for ablation engines.
    fn mode(&self) -> Option<CompactionMode> {
        None
    }

    /// Execution cycles (ALU waves) for one instruction with execution mask
    /// `mask` at the `dtype` datapath granularity.
    fn cycles(&self, mask: ExecMask, dtype: DataType) -> u32;

    /// Quartile micro-op expansion of `insn` under `mask`: the issue set,
    /// with suppressed-fetch/write-back accounting relative to baseline.
    fn expand(&self, insn: &Instruction, mask: ExecMask) -> Expansion;

    /// The operand swizzle/unswizzle schedule this engine programs into the
    /// crossbar, when it compacts by swizzling; `None` for engines that
    /// only skip or issue in place.
    fn schedule(&self, _mask: ExecMask) -> Option<SccSchedule> {
        None
    }

    /// Dynamic energy of one instruction under `model` (arbitrary units,
    /// consistent with [`RfModel`]).
    fn energy(&self, model: &EnergyModel, mask: ExecMask, dtype: DataType) -> f64;
}

// ---------------------------------------------------------------------------
// The four standard engines (the paper's configurations).
// ---------------------------------------------------------------------------

/// Shared fetch + write-back + execution energy of the quartile-issue
/// engines (baseline / IVB / BCC): `w` issued quartiles each fetch every
/// source half and write the destination half from register file `org`.
fn quartile_energy(model: &EnergyModel, w: f64, org: RfOrganization) -> f64 {
    let rf = RfModel::new(org);
    let accesses = w * f64::from(model.srcs_per_insn + 1);
    w * model.wave_exec + accesses * rf.access_energy(128)
}

/// No cycle compression: every wave issues, enabled or not.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineEngine;

impl CompactionEngine for BaselineEngine {
    fn label(&self) -> &str {
        "base"
    }

    fn mode(&self) -> Option<CompactionMode> {
        Some(CompactionMode::Baseline)
    }

    fn cycles(&self, mask: ExecMask, dtype: DataType) -> u32 {
        mask.width().div_ceil(dtype.elements_per_wave())
    }

    fn expand(&self, insn: &Instruction, mask: ExecMask) -> Expansion {
        let issue_set: Vec<u32> = (0..mask.quad_count()).collect();
        expand_quartiles(insn, mask, &issue_set)
    }

    fn energy(&self, model: &EnergyModel, mask: ExecMask, dtype: DataType) -> f64 {
        quartile_energy(
            model,
            f64::from(self.cycles(mask, dtype)),
            RfOrganization::Baseline,
        )
    }
}

/// The limited half-width optimization present in real Ivy Bridge hardware
/// (Fig. 8): a SIMD16 instruction whose upper or lower eight channels are
/// all disabled executes as SIMD8.
#[derive(Clone, Copy, Debug, Default)]
pub struct IvyBridgeEngine;

impl IvyBridgeEngine {
    fn half_idle(mask: ExecMask) -> bool {
        mask.width() == 16 && (mask.upper_half_idle() || mask.lower_half_idle())
    }
}

impl CompactionEngine for IvyBridgeEngine {
    fn label(&self) -> &str {
        "ivb"
    }

    fn mode(&self) -> Option<CompactionMode> {
        Some(CompactionMode::IvyBridge)
    }

    fn cycles(&self, mask: ExecMask, dtype: DataType) -> u32 {
        let g = dtype.elements_per_wave();
        let width = mask.width();
        if Self::half_idle(mask) {
            (width / 2).div_ceil(g)
        } else {
            width.div_ceil(g)
        }
    }

    fn expand(&self, insn: &Instruction, mask: ExecMask) -> Expansion {
        let quads = mask.quad_count();
        let issue_set: Vec<u32> = if mask.width() == 16 && mask.upper_half_idle() {
            (0..quads / 2).collect()
        } else if mask.width() == 16 && mask.lower_half_idle() {
            (quads / 2..quads).collect()
        } else {
            (0..quads).collect()
        };
        expand_quartiles(insn, mask, &issue_set)
    }

    fn energy(&self, model: &EnergyModel, mask: ExecMask, dtype: DataType) -> f64 {
        quartile_energy(
            model,
            f64::from(self.cycles(mask, dtype)),
            RfOrganization::Baseline,
        )
    }
}

/// Basic cycle compression: any aligned all-disabled group is skipped along
/// with its operand fetches and write-back.
#[derive(Clone, Copy, Debug, Default)]
pub struct BccEngine;

impl CompactionEngine for BccEngine {
    fn label(&self) -> &str {
        "bcc"
    }

    fn mode(&self) -> Option<CompactionMode> {
        Some(CompactionMode::Bcc)
    }

    fn cycles(&self, mask: ExecMask, dtype: DataType) -> u32 {
        mask.active_groups(dtype.elements_per_wave()).max(1)
    }

    fn expand(&self, insn: &Instruction, mask: ExecMask) -> Expansion {
        let active: Vec<u32> = (0..mask.quad_count())
            .filter(|&q| mask.quad_active(q))
            .collect();
        let issue_set = if active.is_empty() { vec![0] } else { active };
        expand_quartiles(insn, mask, &issue_set)
    }

    fn energy(&self, model: &EnergyModel, mask: ExecMask, dtype: DataType) -> f64 {
        quartile_energy(
            model,
            f64::from(self.cycles(mask, dtype)),
            RfOrganization::Bcc,
        )
    }
}

/// Swizzled cycle compression: channels are permuted through the operand
/// crossbar so enabled channels pack into ⌈active/4⌉ waves.
#[derive(Clone, Copy, Debug, Default)]
pub struct SccEngine;

/// Energy of a swizzling engine (§4.3): full-width operand fetch once per
/// source (the 512-bit latch), per-wave write-backs, crossbar routing, and
/// the settings-computation control logic.
fn swizzled_energy(model: &EnergyModel, mask: ExecMask, w: f64, pump: f64, swizzles: u32) -> f64 {
    let rf = RfModel::new(RfOrganization::Scc);
    let fetch = f64::from(model.srcs_per_insn) * rf.access_energy(mask.quad_count() * 128) * pump;
    let wb = w * rf.access_energy(128);
    let crossbar = f64::from(swizzles) * model.swizzle_per_channel;
    w * model.wave_exec + fetch + wb + crossbar + model.scc_control
}

impl CompactionEngine for SccEngine {
    fn label(&self) -> &str {
        "scc"
    }

    fn mode(&self) -> Option<CompactionMode> {
        Some(CompactionMode::Scc)
    }

    fn cycles(&self, mask: ExecMask, dtype: DataType) -> u32 {
        mask.active_channels()
            .div_ceil(dtype.elements_per_wave())
            .max(1)
    }

    fn expand(&self, insn: &Instruction, mask: ExecMask) -> Expansion {
        expand_scheduled(insn, mask, &SccSchedule::compute(mask))
    }

    fn schedule(&self, mask: ExecMask) -> Option<SccSchedule> {
        Some(SccSchedule::compute(mask))
    }

    fn energy(&self, model: &EnergyModel, mask: ExecMask, dtype: DataType) -> f64 {
        let sched = SccSchedule::compute(mask);
        swizzled_energy(
            model,
            mask,
            f64::from(self.cycles(mask, dtype)),
            dtype.alu_slots() as f64,
            sched.swizzle_count(),
        )
    }
}

static BASELINE_ENGINE: BaselineEngine = BaselineEngine;
static IVY_BRIDGE_ENGINE: IvyBridgeEngine = IvyBridgeEngine;
static BCC_ENGINE: BccEngine = BccEngine;
static SCC_ENGINE: SccEngine = SccEngine;

/// The static engine implementing one of the paper's four configurations —
/// the zero-cost dispatch point behind [`crate::waves_typed`],
/// [`crate::expand`] and [`EnergyModel::instruction_energy`].
pub fn engine_of(mode: CompactionMode) -> &'static dyn CompactionEngine {
    match mode {
        CompactionMode::Baseline => &BASELINE_ENGINE,
        CompactionMode::IvyBridge => &IVY_BRIDGE_ENGINE,
        CompactionMode::Bcc => &BCC_ENGINE,
        CompactionMode::Scc => &SCC_ENGINE,
    }
}

// ---------------------------------------------------------------------------
// SccLimited: the §4.3 distance-bounded swizzle network.
// ---------------------------------------------------------------------------

/// SCC with a distance-limited swizzle network: hardware lane `n` may only
/// borrow a channel whose home lane `m` satisfies `|m − n| ≤ k`.
///
/// The scheduler is a greedy two-pass variant of the Fig. 6 algorithm. Each
/// cycle: (1) every lane with work in its own queue issues it directly;
/// (2) every still-idle lane borrows the front element of the *longest*
/// remaining queue within its reach (ties to the lowest lane). Every
/// non-empty queue shrinks each cycle, so the schedule always terminates in
/// at most `max queue length ≤ 8` cycles, and for `k ≥ 3` (full crossbar)
/// each cycle issues `min(4, remaining)` channels — exactly the
/// ⌈active/4⌉ optimum of [`SccEngine`].
#[derive(Clone, Debug)]
pub struct SccLimited {
    k: u8,
    label: String,
}

impl SccLimited {
    /// A limited-swizzle engine with lane reach `k` (0 ≤ k; `k ≥ 3` is a
    /// full crossbar). Label: `scc-k<k>`.
    pub fn new(k: u8) -> Self {
        Self {
            k,
            label: format!("scc-k{k}"),
        }
    }

    /// Registers a reach-`k` engine in the global registry (idempotent) and
    /// returns its handle.
    pub fn register(k: u8) -> EngineId {
        EngineRegistry::global().register(Arc::new(Self::new(k)))
    }

    /// The lane reach of the swizzle network.
    pub fn reach(&self) -> u8 {
        self.k
    }

    /// Computes the distance-limited schedule for `mask`.
    ///
    /// Limited schedules satisfy the issue invariants
    /// ([`SccSchedule::validate_issue`]) but may legitimately exceed the
    /// ⌈active/4⌉ optimum when the reach is too short to rebalance lanes.
    pub fn limited_schedule(&self, mask: ExecMask) -> SccSchedule {
        let a_ln_cnt = mask.active_channels();
        let o_cyc_cnt = a_ln_cnt.div_ceil(QUAD).max(1);
        if mask.active_quads().max(1) == o_cyc_cnt {
            // Skipping empty quads already meets the optimum: the BCC-like
            // direct schedule needs no swizzles and is valid for any reach.
            return SccSchedule::compute(mask);
        }

        // a_ln_q[n]: queue of quads with lane n active (fixed arrays; a lane
        // sees each of the ≤ 8 quads at most once).
        let mut a_ln_q = [[0u8; MAX_SCC_CYCLES]; QUAD as usize];
        let mut q_len = [0u8; QUAD as usize];
        let mut q_head = [0u8; QUAD as usize];
        for q in 0..mask.quad_count() {
            let bits = mask.quad_bits(q);
            for n in 0..QUAD as usize {
                if bits >> n & 1 == 1 {
                    a_ln_q[n][q_len[n] as usize] = q as u8;
                    q_len[n] += 1;
                }
            }
        }

        let mut cycles = [[LaneSlot::Disabled; QUAD as usize]; MAX_SCC_CYCLES];
        let mut len = 0usize;
        let mut swizzles = 0u32;
        while (0..QUAD as usize).any(|n| q_head[n] < q_len[n]) {
            let slots = &mut cycles[len];
            // Pass 1: every lane with its own work issues directly, so every
            // non-empty queue shrinks and the loop provably terminates.
            for n in 0..QUAD as usize {
                if q_head[n] < q_len[n] {
                    slots[n] = LaneSlot::Direct {
                        quad: a_ln_q[n][q_head[n] as usize],
                    };
                    q_head[n] += 1;
                }
            }
            // Pass 2: idle lanes borrow from the longest queue in reach.
            for (n, slot) in slots.iter_mut().enumerate() {
                if !matches!(slot, LaneSlot::Disabled) {
                    continue;
                }
                let mut best: Option<usize> = None;
                for m in 0..QUAD as usize {
                    if m == n || (m as i32 - n as i32).unsigned_abs() > u32::from(self.k) {
                        continue;
                    }
                    let rem = q_len[m] - q_head[m];
                    if rem > 0 && best.is_none_or(|b| rem > q_len[b] - q_head[b]) {
                        best = Some(m);
                    }
                }
                if let Some(m) = best {
                    *slot = LaneSlot::Swizzled {
                        quad: a_ln_q[m][q_head[m] as usize],
                        from_lane: m as u8,
                    };
                    q_head[m] += 1;
                    swizzles += 1;
                }
            }
            len += 1;
        }
        SccSchedule::from_cycle_list(mask, &cycles[..len.max(1)], swizzles, false)
    }
}

impl CompactionEngine for SccLimited {
    fn label(&self) -> &str {
        &self.label
    }

    fn cycles(&self, mask: ExecMask, dtype: DataType) -> u32 {
        let g = dtype.elements_per_wave();
        let sched = self.limited_schedule(mask);
        if g >= QUAD {
            // Wider-than-32-bit groups consume g/4 schedule cycles at a time
            // (for k ≥ 3 this reduces to ⌈active/g⌉, matching SccEngine).
            sched.cycle_count().div_ceil(g / QUAD).max(1)
        } else {
            // 64-bit types double-pump each scheduled wave's issued channels.
            sched
                .cycles()
                .iter()
                .map(|slots| {
                    let issued = slots
                        .iter()
                        .enumerate()
                        .filter(|(n, s)| s.channel(*n as u8).is_some())
                        .count() as u32;
                    issued.div_ceil(g).max(1)
                })
                .sum()
        }
    }

    fn expand(&self, insn: &Instruction, mask: ExecMask) -> Expansion {
        expand_scheduled(insn, mask, &self.limited_schedule(mask))
    }

    fn schedule(&self, mask: ExecMask) -> Option<SccSchedule> {
        Some(self.limited_schedule(mask))
    }

    fn energy(&self, model: &EnergyModel, mask: ExecMask, dtype: DataType) -> f64 {
        let sched = self.limited_schedule(mask);
        swizzled_energy(
            model,
            mask,
            f64::from(self.cycles(mask, dtype)),
            dtype.alu_slots() as f64,
            sched.swizzle_count(),
        )
    }
}

// ---------------------------------------------------------------------------
// EngineId + the process-wide registry.
// ---------------------------------------------------------------------------

/// A cheap, `Copy` handle to an engine in the process-wide
/// [`EngineRegistry`] — what configuration structs store and sweeps iterate
/// over. Converts from [`CompactionMode`] (`mode.into()`), compares against
/// it, and `Display`s as the engine label, so call sites written against
/// the old enum keep working unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EngineId(u16);

impl EngineId {
    /// [`BaselineEngine`] (`base`).
    pub const BASELINE: EngineId = EngineId(0);
    /// [`IvyBridgeEngine`] (`ivb`) — the paper's reporting baseline.
    pub const IVY_BRIDGE: EngineId = EngineId(1);
    /// [`BccEngine`] (`bcc`).
    pub const BCC: EngineId = EngineId(2);
    /// [`SccEngine`] (`scc`).
    pub const SCC: EngineId = EngineId(3);

    /// The canonical mode ordering, weakest to strongest — the documented
    /// source of truth for every four-mode sweep and report column order.
    /// Coincides with [`CompactionMode::ALL`] (pinned by a unit test).
    pub const CANONICAL: [EngineId; 4] = [Self::BASELINE, Self::IVY_BRIDGE, Self::BCC, Self::SCC];

    /// Resolves the handle in the global registry.
    ///
    /// # Panics
    ///
    /// Panics when the id was never issued by the registry.
    pub fn engine(self) -> Arc<dyn CompactionEngine> {
        EngineRegistry::global().get(self)
    }

    /// The engine's report label.
    pub fn label(self) -> String {
        self.engine().label().to_owned()
    }

    /// The [`CompactionMode`] this engine reproduces, if any.
    pub fn mode(self) -> Option<CompactionMode> {
        self.engine().mode()
    }

    /// Registry slot index (stable for the process lifetime).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl Default for EngineId {
    /// The paper's reporting baseline, matching `CompactionMode::default()`.
    fn default() -> Self {
        Self::IVY_BRIDGE
    }
}

impl From<CompactionMode> for EngineId {
    fn from(mode: CompactionMode) -> Self {
        match mode {
            CompactionMode::Baseline => Self::BASELINE,
            CompactionMode::IvyBridge => Self::IVY_BRIDGE,
            CompactionMode::Bcc => Self::BCC,
            CompactionMode::Scc => Self::SCC,
        }
    }
}

impl PartialEq<CompactionMode> for EngineId {
    fn eq(&self, other: &CompactionMode) -> bool {
        *self == EngineId::from(*other)
    }
}

impl PartialEq<EngineId> for CompactionMode {
    fn eq(&self, other: &EngineId) -> bool {
        EngineId::from(*self) == *other
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let engine = self.engine();
        f.write_str(engine.label())
    }
}

/// The process-wide engine registry.
///
/// Seeded with the four standard engines in [`EngineId::CANONICAL`] order;
/// ablation engines are appended at runtime via [`EngineRegistry::register`]
/// (idempotent per label). Ids are slot indices and remain valid for the
/// process lifetime — engines are never removed.
#[derive(Debug)]
pub struct EngineRegistry {
    engines: RwLock<Vec<Arc<dyn CompactionEngine>>>,
}

impl EngineRegistry {
    /// The global registry.
    pub fn global() -> &'static EngineRegistry {
        static GLOBAL: OnceLock<EngineRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| EngineRegistry {
            engines: RwLock::new(vec![
                Arc::new(BaselineEngine),
                Arc::new(IvyBridgeEngine),
                Arc::new(BccEngine),
                Arc::new(SccEngine),
            ]),
        })
    }

    /// Registers `engine`, returning its handle. Registering a label twice
    /// returns the existing handle (the new object is dropped), so
    /// experiments can re-register their engines freely.
    pub fn register(&self, engine: Arc<dyn CompactionEngine>) -> EngineId {
        let mut engines = self.engines.write().expect("engine registry poisoned");
        if let Some(i) = engines.iter().position(|e| e.label() == engine.label()) {
            return EngineId(i as u16);
        }
        engines.push(engine);
        EngineId((engines.len() - 1) as u16)
    }

    /// Resolves a handle.
    ///
    /// # Panics
    ///
    /// Panics when `id` was never issued by this registry.
    pub fn get(&self, id: EngineId) -> Arc<dyn CompactionEngine> {
        self.engines.read().expect("engine registry poisoned")[id.index()].clone()
    }

    /// Looks an engine up by label.
    pub fn find(&self, label: &str) -> Option<EngineId> {
        self.engines
            .read()
            .expect("engine registry poisoned")
            .iter()
            .position(|e| e.label() == label)
            .map(|i| EngineId(i as u16))
    }

    /// The canonical four-mode ordering (see [`EngineId::CANONICAL`]).
    pub fn canonical(&self) -> [EngineId; 4] {
        EngineId::CANONICAL
    }

    /// Handles of every registered engine, in registration order.
    pub fn ids(&self) -> Vec<EngineId> {
        (0..self.len()).map(|i| EngineId(i as u16)).collect()
    }

    /// Labels of every registered engine, in registration order.
    pub fn labels(&self) -> Vec<String> {
        self.engines
            .read()
            .expect("engine registry poisoned")
            .iter()
            .map(|e| e.label().to_owned())
            .collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.read().expect("engine registry poisoned").len()
    }

    /// Always false: the registry is seeded with the standard engines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// EngineTally: per-engine cycle accounting over arbitrary engine sets.
// ---------------------------------------------------------------------------

/// Aggregate execution-cycle accounting for an arbitrary set of engines —
/// the engine-generic counterpart of [`crate::CompactionTally`] (which is
/// fixed to the paper's four modes). Used by mode sweeps that include
/// ablation engines, e.g. the `ablation_swizzle` experiment.
#[derive(Clone, Debug)]
pub struct EngineTally {
    engines: Vec<(EngineId, Arc<dyn CompactionEngine>)>,
    cycles: Vec<u64>,
    instructions: u64,
    active_channels: u64,
    total_channels: u64,
}

impl EngineTally {
    /// An empty tally accounting the given engines (resolved once, so the
    /// per-instruction hot path never touches the registry lock).
    pub fn new(ids: &[EngineId]) -> Self {
        Self {
            engines: ids.iter().map(|&id| (id, id.engine())).collect(),
            cycles: vec![0; ids.len()],
            instructions: 0,
            active_channels: 0,
            total_channels: 0,
        }
    }

    /// Accounts one executed instruction.
    pub fn add(&mut self, mask: ExecMask, dtype: DataType) {
        self.add_run(mask, dtype, 1);
    }

    /// Accounts a run of `n` identical `(mask, dtype)` instructions in one
    /// pass over the engine set — every field is an integer sum, so the
    /// multiplicative charge is exactly equal to `n` repeated
    /// [`add`](Self::add) calls.
    pub fn add_run(&mut self, mask: ExecMask, dtype: DataType, n: u64) {
        for ((_, engine), total) in self.engines.iter().zip(self.cycles.iter_mut()) {
            *total += u64::from(engine.cycles(mask, dtype)) * n;
        }
        self.instructions += n;
        self.active_channels += u64::from(mask.active_channels()) * n;
        self.total_channels += u64::from(mask.width()) * n;
    }

    /// Merges another tally over the same engine set.
    ///
    /// # Panics
    ///
    /// Panics when the engine sets differ.
    pub fn merge(&mut self, other: &EngineTally) {
        assert_eq!(
            self.ids(),
            other.ids(),
            "merging tallies of different engine sets"
        );
        for (a, b) in self.cycles.iter_mut().zip(&other.cycles) {
            *a += b;
        }
        self.instructions += other.instructions;
        self.active_channels += other.active_channels;
        self.total_channels += other.total_channels;
    }

    /// The engines accounted, in column order.
    pub fn ids(&self) -> Vec<EngineId> {
        self.engines.iter().map(|&(id, _)| id).collect()
    }

    /// Instructions accounted.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// SIMD efficiency of the accounted stream (active / total channels).
    pub fn simd_efficiency(&self) -> f64 {
        if self.total_channels == 0 {
            1.0
        } else {
            self.active_channels as f64 / self.total_channels as f64
        }
    }

    /// Total execution cycles under engine `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this tally.
    pub fn cycles_of(&self, id: EngineId) -> u64 {
        let i = self
            .engines
            .iter()
            .position(|&(e, _)| e == id)
            .unwrap_or_else(|| panic!("engine {id:?} not accounted in this tally"));
        self.cycles[i]
    }

    /// Fractional cycle reduction of engine `id` relative to engine `base`.
    pub fn reduction_vs(&self, id: EngineId, base: EngineId) -> f64 {
        let b = self.cycles_of(base);
        if b == 0 {
            0.0
        } else {
            1.0 - self.cycles_of(id) as f64 / b as f64
        }
    }
}

impl iwc_telemetry::Instrument for EngineTally {
    fn publish(&self, prefix: &str, snap: &mut iwc_telemetry::TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("instructions"), self.instructions);
        snap.set_counter(&j("active_channels"), self.active_channels);
        snap.set_counter(&j("total_channels"), self.total_channels);
        for ((id, _), &cycles) in self.engines.iter().zip(&self.cycles) {
            snap.set_counter(&j(&format!("cycles/{id}")), cycles);
        }
    }
}

impl PartialEq for EngineTally {
    fn eq(&self, other: &Self) -> bool {
        self.ids() == other.ids()
            && self.cycles == other.cycles
            && self.instructions == other.instructions
            && self.active_channels == other.active_channels
            && self.total_channels == other.total_channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m16(bits: u32) -> ExecMask {
        ExecMask::new(bits, 16)
    }

    #[test]
    fn canonical_order_matches_compaction_mode_all() {
        // The registry owns the canonical ordering; CompactionMode::ALL must
        // stay in lock-step with it.
        let canonical = EngineRegistry::global().canonical();
        assert_eq!(canonical, EngineId::CANONICAL);
        for (id, mode) in canonical.iter().zip(CompactionMode::ALL) {
            assert_eq!(id.mode(), Some(mode));
            assert_eq!(id.label(), mode.label());
            assert_eq!(EngineId::from(mode), *id);
        }
    }

    #[test]
    fn engine_of_matches_registry() {
        for mode in CompactionMode::ALL {
            let st = engine_of(mode);
            let reg = EngineId::from(mode).engine();
            assert_eq!(st.label(), reg.label());
            assert_eq!(st.mode(), reg.mode());
        }
    }

    #[test]
    fn registry_register_is_idempotent() {
        let a = SccLimited::register(2);
        let b = SccLimited::register(2);
        assert_eq!(a, b);
        assert_eq!(EngineRegistry::global().find("scc-k2"), Some(a));
        assert!(a.index() >= 4, "appended after the canonical four");
    }

    #[test]
    fn find_resolves_canonical_labels() {
        let reg = EngineRegistry::global();
        assert_eq!(reg.find("base"), Some(EngineId::BASELINE));
        assert_eq!(reg.find("ivb"), Some(EngineId::IVY_BRIDGE));
        assert_eq!(reg.find("bcc"), Some(EngineId::BCC));
        assert_eq!(reg.find("scc"), Some(EngineId::SCC));
        assert_eq!(reg.find("nope"), None);
        assert!(!reg.is_empty());
    }

    #[test]
    fn engine_id_interops_with_mode() {
        assert_eq!(EngineId::default(), CompactionMode::IvyBridge);
        assert_eq!(CompactionMode::Scc, EngineId::SCC);
        assert_eq!(EngineId::SCC.to_string(), "scc");
    }

    #[test]
    fn engines_reproduce_mode_models() {
        use crate::cycles::waves_typed;
        use crate::microop::expand;
        for bits in [0u32, 0x1, 0xF0F0, 0xAAAA, 0x00FF, 0xFFFF, 0x8421] {
            let m = m16(bits);
            for mode in CompactionMode::ALL {
                let e = engine_of(mode);
                for dtype in [DataType::Ub, DataType::Hf, DataType::F, DataType::Df] {
                    assert_eq!(
                        e.cycles(m, dtype),
                        waves_typed(m, dtype, mode),
                        "mask {bits:#x} mode {mode} {dtype:?}"
                    );
                }
                let insn = Instruction::alu(
                    iwc_isa::insn::Opcode::Add,
                    16,
                    DataType::F,
                    iwc_isa::reg::Operand::rf(12),
                    &[iwc_isa::reg::Operand::rf(8), iwc_isa::reg::Operand::rf(10)],
                );
                assert_eq!(e.expand(&insn, m), expand(&insn, m, mode), "mask {bits:#x}");
            }
        }
    }

    #[test]
    fn limited_full_reach_matches_scc() {
        let full = SccLimited::new(3);
        for bits in (0..=0xFFFFu32).step_by(61) {
            let m = m16(bits);
            assert_eq!(
                full.cycles(m, DataType::F),
                SccEngine.cycles(m, DataType::F),
                "mask {bits:#x}"
            );
            full.limited_schedule(m)
                .validate()
                .unwrap_or_else(|e| panic!("mask {bits:#x}: {e}"));
        }
    }

    #[test]
    fn limited_zero_reach_within_bcc() {
        let none = SccLimited::new(0);
        for bits in (0..=0xFFFFu32).step_by(61) {
            let m = m16(bits);
            let k0 = none.cycles(m, DataType::F);
            assert!(
                k0 <= BccEngine.cycles(m, DataType::F),
                "mask {bits:#x}: k=0 worse than BCC"
            );
            assert!(
                k0 >= SccEngine.cycles(m, DataType::F),
                "mask {bits:#x}: k=0 beats full SCC"
            );
            none.limited_schedule(m)
                .validate_issue()
                .unwrap_or_else(|e| panic!("mask {bits:#x}: {e}"));
        }
    }

    #[test]
    fn limited_strided_masks() {
        // 0x1111: all work lives in lane 0. k=0 must serialize (4 cycles,
        // no swizzles); k=1 reaches lane 1 only (3 cycles); k=3 packs to 1.
        let m = m16(0x1111);
        assert_eq!(SccLimited::new(0).cycles(m, DataType::F), 4);
        assert_eq!(SccLimited::new(0).limited_schedule(m).swizzle_count(), 0);
        assert_eq!(SccLimited::new(1).cycles(m, DataType::F), 2);
        assert_eq!(SccLimited::new(3).cycles(m, DataType::F), 1);
    }

    #[test]
    fn limited_empty_mask_one_cycle() {
        for k in 0..=3 {
            let e = SccLimited::new(k);
            let m = ExecMask::none(16);
            assert_eq!(e.cycles(m, DataType::F), 1);
            let s = e.limited_schedule(m);
            assert_eq!(s.cycle_count(), 1);
            s.validate().unwrap();
        }
    }

    #[test]
    fn engine_tally_accounts_and_reduces() {
        let k1 = SccLimited::register(1);
        let ids = [EngineId::IVY_BRIDGE, EngineId::BCC, k1, EngineId::SCC];
        let mut t = EngineTally::new(&ids);
        t.add(m16(0xAAAA), DataType::F);
        t.add(m16(0x00FF), DataType::F);
        // ivb: 4 + 2 = 6; bcc: 4 + 2; scc: 2 + 2 = 4.
        assert_eq!(t.cycles_of(EngineId::IVY_BRIDGE), 6);
        assert_eq!(t.cycles_of(EngineId::SCC), 4);
        let k1_cycles = t.cycles_of(k1);
        assert!((4..=6).contains(&k1_cycles));
        assert_eq!(t.instructions(), 2);
        assert_eq!(t.simd_efficiency(), 0.5);
        let mut u = EngineTally::new(&ids);
        u.add(m16(0xAAAA), DataType::F);
        u.add(m16(0x00FF), DataType::F);
        assert_eq!(t, u);
        u.merge(&t);
        assert_eq!(u.cycles_of(EngineId::SCC), 8);
        assert!(u.reduction_vs(EngineId::SCC, EngineId::IVY_BRIDGE) > 0.3);
    }

    #[test]
    fn engine_tally_run_equals_repeated_adds() {
        let ids = EngineId::CANONICAL;
        for bits in [0xFFFFu32, 0xF0F0, 0xAAAA, 0x0001, 0x0000] {
            let mut runs = EngineTally::new(&ids);
            runs.add_run(m16(bits), DataType::F, 5);
            let mut scalar = EngineTally::new(&ids);
            for _ in 0..5 {
                scalar.add(m16(bits), DataType::F);
            }
            assert_eq!(runs, scalar, "mask {bits:#06x}");
        }
        let mut zero = EngineTally::new(&ids);
        zero.add_run(m16(0xFFFF), DataType::F, 0);
        assert_eq!(zero, EngineTally::new(&ids), "zero-length run is a no-op");
    }
}
