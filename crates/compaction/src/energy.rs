//! Dynamic-energy model of cycle compression (§4.3).
//!
//! The paper discusses energy qualitatively: "BCC and SCC optimizations
//! offer dynamic energy reductions through opportunistic execution cycle
//! reductions. With a BCC optimized register file, one can expect to save
//! operand fetch energy in cases where BCC is effective" — while SCC's
//! full-width operand latch means it saves execution energy but *not* fetch
//! energy, and its crossbar and control logic add a modest overhead.
//!
//! This module turns those statements into a first-order per-instruction
//! energy model (arbitrary units, consistent with [`crate::rf::RfModel`])
//! so workloads can be compared across modes.

use crate::cycles::CompactionMode;
use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use serde::{Deserialize, Serialize};

/// Energy cost coefficients (arbitrary units).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of executing one 4-channel wave in the ALU.
    pub wave_exec: f64,
    /// Energy of routing one channel through the SCC crossbar.
    pub swizzle_per_channel: f64,
    /// Control-logic energy per instruction for computing SCC settings
    /// (BCC's control is simple enough to fold into decode).
    pub scc_control: f64,
    /// Number of source operands assumed per instruction (the paper's FMA
    /// example is 3r-1w; 2 is typical).
    pub srcs_per_insn: u32,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            wave_exec: 80.0,
            swizzle_per_channel: 6.0,
            scc_control: 10.0,
            srcs_per_insn: 2,
        }
    }
}

impl EnergyModel {
    /// Dynamic energy of one instruction with execution mask `mask` under
    /// `mode`: operand fetches + write-backs from the mode's register file
    /// organization, ALU wave execution, and (for SCC) crossbar + control
    /// overhead. The per-mode formulas live in the mode's [`crate::engine`]
    /// implementation; this method dispatches to the matching engine.
    ///
    /// # Examples
    ///
    /// ```
    /// use iwc_compaction::{CompactionMode, EnergyModel};
    /// use iwc_isa::{DataType, ExecMask};
    ///
    /// let e = EnergyModel::default();
    /// let sparse = ExecMask::new(0x000F, 16);
    /// // BCC suppresses 3 of 4 quartiles — execution AND fetch energy drop.
    /// let bcc = e.instruction_energy(sparse, DataType::F, CompactionMode::Bcc);
    /// let base = e.instruction_energy(sparse, DataType::F, CompactionMode::Baseline);
    /// assert!(bcc < base / 2.0);
    /// ```
    pub fn instruction_energy(&self, mask: ExecMask, dtype: DataType, mode: CompactionMode) -> f64 {
        crate::engine::engine_of(mode).energy(self, mask, dtype)
    }

    /// Total energy of a mask stream under `mode`.
    pub fn stream_energy<'a, I>(&self, stream: I, mode: CompactionMode) -> f64
    where
        I: IntoIterator<Item = &'a (ExecMask, DataType)>,
    {
        stream
            .into_iter()
            .map(|&(m, d)| self.instruction_energy(m, d, mode))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m16(bits: u32) -> ExecMask {
        ExecMask::new(bits, 16)
    }

    #[test]
    fn bcc_saves_energy_on_idle_quads() {
        let e = EnergyModel::default();
        let sparse = m16(0x000F);
        let bcc = e.instruction_energy(sparse, DataType::F, CompactionMode::Bcc);
        let base = e.instruction_energy(sparse, DataType::F, CompactionMode::Baseline);
        assert!(bcc < base * 0.5, "bcc {bcc:.1} vs baseline {base:.1}");
    }

    #[test]
    fn full_mask_bcc_energy_close_to_baseline() {
        let e = EnergyModel::default();
        let full = ExecMask::all(16);
        let bcc = e.instruction_energy(full, DataType::F, CompactionMode::Bcc);
        let base = e.instruction_energy(full, DataType::F, CompactionMode::Baseline);
        assert!(
            (bcc / base - 1.0).abs() < 0.1,
            "bcc {bcc:.1} vs baseline {base:.1}"
        );
    }

    #[test]
    fn scc_saves_execution_but_not_fetch() {
        let e = EnergyModel::default();
        let strided = m16(0xAAAA);
        let scc = e.instruction_energy(strided, DataType::F, CompactionMode::Scc);
        let base = e.instruction_energy(strided, DataType::F, CompactionMode::Baseline);
        let bcc = e.instruction_energy(strided, DataType::F, CompactionMode::Bcc);
        assert!(
            scc < base,
            "SCC should still win on 0xAAAA: {scc:.1} vs {base:.1}"
        );
        assert!(scc < bcc, "BCC can't compress 0xAAAA");
        // But SCC's saving is less than its 50% cycle saving would suggest
        // because the full-width fetch is not compressed.
        let cycle_ratio = 0.5;
        assert!(scc / base > cycle_ratio, "energy saves less than cycles");
    }

    #[test]
    fn wide_types_cost_double() {
        let e = EnergyModel::default();
        let m = m16(0xFFFF);
        let f = e.instruction_energy(m, DataType::F, CompactionMode::Baseline);
        let df = e.instruction_energy(m, DataType::Df, CompactionMode::Baseline);
        assert!(df > 1.8 * f);
    }

    #[test]
    fn stream_energy_sums() {
        let e = EnergyModel::default();
        let stream = vec![(m16(0xFFFF), DataType::F), (m16(0x000F), DataType::F)];
        let total = e.stream_energy(&stream, CompactionMode::Bcc);
        let parts: f64 = stream
            .iter()
            .map(|&(m, d)| e.instruction_energy(m, d, CompactionMode::Bcc))
            .sum();
        assert_eq!(total, parts);
    }
}
