//! Whole-kernel cycle accounting.
//!
//! [`CompactionTally`] accumulates per-instruction execution masks into the
//! aggregate quantities the paper reports: per-mode EU execution cycles
//! (Fig. 10), SIMD efficiency (Fig. 3), the SIMD utilization breakdown
//! (Fig. 9), and operand-fetch savings.

use crate::cycles::{CompactionMode, CycleBreakdown};
use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SIMD utilization bucket of one instruction (Fig. 9 categories).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilBucket {
    /// SIMD16 instruction with 1–4 active channels (3 cycles saveable).
    S16Active1To4,
    /// SIMD16 with 5–8 active (2 cycles saveable).
    S16Active5To8,
    /// SIMD16 with 9–12 active (1 cycle saveable).
    S16Active9To12,
    /// SIMD16 with 13–16 active (no compaction possible).
    S16Active13To16,
    /// SIMD8 with 1–4 active (1 cycle saveable).
    S8Active1To4,
    /// SIMD8 with 5–8 active (no compaction possible).
    S8Active5To8,
    /// Any other width, or an all-disabled mask.
    Other,
}

impl UtilBucket {
    /// Classifies one mask.
    pub fn of(mask: ExecMask) -> Self {
        let a = mask.active_channels();
        match (mask.width(), a) {
            (_, 0) => Self::Other,
            (16, 1..=4) => Self::S16Active1To4,
            (16, 5..=8) => Self::S16Active5To8,
            (16, 9..=12) => Self::S16Active9To12,
            (16, _) => Self::S16Active13To16,
            (8, 1..=4) => Self::S8Active1To4,
            (8, _) => Self::S8Active5To8,
            _ => Self::Other,
        }
    }

    /// All buckets in Fig. 9 legend order.
    pub const ALL: [UtilBucket; 7] = [
        UtilBucket::S16Active1To4,
        UtilBucket::S16Active5To8,
        UtilBucket::S16Active9To12,
        UtilBucket::S16Active13To16,
        UtilBucket::S8Active1To4,
        UtilBucket::S8Active5To8,
        UtilBucket::Other,
    ];

    /// Fig. 9 legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::S16Active1To4 => "1-4/16",
            Self::S16Active5To8 => "5-8/16",
            Self::S16Active9To12 => "9-12/16",
            Self::S16Active13To16 => "13-16/16",
            Self::S8Active1To4 => "1-4/8",
            Self::S8Active5To8 => "5-8/8",
            Self::Other => "other",
        }
    }
}

/// Aggregated compaction statistics over an instruction stream.
///
/// # Examples
///
/// ```
/// use iwc_compaction::{CompactionMode, CompactionTally};
/// use iwc_isa::{DataType, ExecMask};
///
/// let mut t = CompactionTally::new();
/// t.add(ExecMask::new(0xF0F0, 16), DataType::F); // BCC halves this one
/// t.add(ExecMask::all(16), DataType::F);         // incompressible
/// assert_eq!(t.simd_efficiency(), 0.75);
/// assert_eq!(t.reduction_vs_ivb(CompactionMode::Bcc), 0.25);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionTally {
    /// Per-mode execution-cycle totals.
    pub cycles: CycleBreakdown,
    /// Number of instructions tallied.
    pub instructions: u64,
    /// Sum of active channels over all instructions.
    pub active_channels: u64,
    /// Sum of SIMD widths over all instructions.
    pub total_channels: u64,
    /// Instruction counts per utilization bucket.
    pub buckets: [u64; 7],
    /// Operand-fetch register-half accesses saved by BCC.
    pub bcc_fetches_saved: u64,
    /// Channels routed through the SCC swizzle crossbar.
    pub scc_swizzles: u64,
}

impl CompactionTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one executed instruction.
    pub fn add(&mut self, mask: ExecMask, dtype: DataType) {
        self.add_delta(&TallyDelta::of(mask, dtype));
    }

    /// Adds one executed instruction from its precomputed contribution.
    ///
    /// Hot issue paths compute the [`TallyDelta`] once per distinct
    /// `(mask, dtype)` (see [`TallyMemo`]) and apply it to several tallies;
    /// the result is identical to calling [`add`](Self::add) on each.
    pub fn add_delta(&mut self, d: &TallyDelta) {
        self.cycles.accumulate(d.cycles);
        self.instructions += 1;
        self.active_channels += d.active_channels;
        self.total_channels += d.total_channels;
        self.buckets[d.bucket] += 1;
        self.bcc_fetches_saved += d.bcc_fetches_saved;
        self.scc_swizzles += d.scc_swizzles;
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Self) {
        self.cycles.accumulate(other.cycles);
        self.instructions += other.instructions;
        self.active_channels += other.active_channels;
        self.total_channels += other.total_channels;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.bcc_fetches_saved += other.bcc_fetches_saved;
        self.scc_swizzles += other.scc_swizzles;
    }

    /// Kernel SIMD efficiency: average enabled channels / average width
    /// (the Fig. 3 metric).
    pub fn simd_efficiency(&self) -> f64 {
        if self.total_channels == 0 {
            1.0
        } else {
            self.active_channels as f64 / self.total_channels as f64
        }
    }

    /// True when the workload counts as *coherent* under the paper's 95 %
    /// SIMD-efficiency threshold (§5.3).
    pub fn is_coherent(&self) -> bool {
        self.simd_efficiency() >= 0.95
    }

    /// Fraction of instructions in each utilization bucket (Fig. 9 bars).
    pub fn bucket_fractions(&self) -> [(UtilBucket, f64); 7] {
        let n = self.instructions.max(1) as f64;
        let mut out = [(UtilBucket::Other, 0.0); 7];
        for (i, b) in UtilBucket::ALL.iter().enumerate() {
            out[i] = (*b, self.buckets[i] as f64 / n);
        }
        out
    }

    /// EU execution-cycle reduction of `mode` relative to the Ivy Bridge
    /// baseline (the Fig. 10 quantity).
    pub fn reduction_vs_ivb(&self, mode: CompactionMode) -> f64 {
        self.cycles.reduction_vs_ivb(mode)
    }
}

/// Precomputed [`CompactionTally::add`] contribution of one executed
/// instruction. Every field is a pure function of `(mask, dtype)`, so the
/// hot issue path can evaluate the four cycle models, the utilization
/// bucket, and the swizzle cost once per distinct mask and replay the
/// result into several tallies.
#[derive(Clone, Copy, Debug, Default)]
pub struct TallyDelta {
    cycles: CycleBreakdown,
    active_channels: u64,
    total_channels: u64,
    bucket: usize,
    bcc_fetches_saved: u64,
    scc_swizzles: u64,
}

impl TallyDelta {
    /// Computes the contribution of one `(mask, dtype)` instruction.
    pub fn of(mask: ExecMask, dtype: DataType) -> Self {
        let bucket = UtilBucket::of(mask);
        // Fetch/swizzle accounting assumes a representative 2-source op.
        let idle_quads = u64::from(mask.quad_count() - mask.active_quads().min(mask.quad_count()));
        Self {
            cycles: CycleBreakdown::of(mask, dtype),
            active_channels: u64::from(mask.active_channels()),
            total_channels: u64::from(mask.width()),
            bucket: UtilBucket::ALL
                .iter()
                .position(|&b| b == bucket)
                .expect("bucket in ALL"),
            bcc_fetches_saved: 2 * idle_quads,
            // Exact swizzled-channel count of the Fig. 6 algorithm, served
            // from the process-wide schedule memo (O(1) on repeated masks).
            scc_swizzles: u64::from(crate::scc::SccCost::of(mask).swizzles),
        }
    }
}

/// Small direct-mapped memo over [`TallyDelta::of`].
///
/// Loop bodies re-present the same execution mask over and over, but an EU
/// interleaves several threads whose masks differ; a few direct-mapped ways
/// keep all of them resident, turning the per-issue tally cost into a key
/// compare plus a handful of integer adds. Collisions just recompute.
#[derive(Clone, Debug)]
pub struct TallyMemo {
    keys: [Option<(u32, u32, DataType)>; Self::WAYS],
    deltas: [TallyDelta; Self::WAYS],
}

impl Default for TallyMemo {
    fn default() -> Self {
        Self {
            keys: [None; Self::WAYS],
            deltas: [TallyDelta::default(); Self::WAYS],
        }
    }
}

impl TallyMemo {
    const WAYS: usize = 64;

    /// The tally contribution of `(mask, dtype)`, computed or replayed.
    pub fn delta(&mut self, mask: ExecMask, dtype: DataType) -> TallyDelta {
        let key = (mask.bits(), mask.width(), dtype);
        let way = (key.0.wrapping_mul(0x9E37_79B9) >> 26) as usize;
        if self.keys[way] != Some(key) {
            self.deltas[way] = TallyDelta::of(mask, dtype);
            self.keys[way] = Some(key);
        }
        self.deltas[way]
    }
}

impl iwc_telemetry::Instrument for CompactionTally {
    fn publish(&self, prefix: &str, snap: &mut iwc_telemetry::TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("instructions"), self.instructions);
        snap.set_counter(&j("active_channels"), self.active_channels);
        snap.set_counter(&j("total_channels"), self.total_channels);
        snap.set_counter(&j("bcc_fetches_saved"), self.bcc_fetches_saved);
        snap.set_counter(&j("scc_swizzles"), self.scc_swizzles);
        for mode in CompactionMode::ALL {
            snap.set_counter(&j(&format!("cycles/{mode}")), self.cycles.get(mode));
        }
        for (i, bucket) in UtilBucket::ALL.iter().enumerate() {
            // Bucket labels contain '/', which reads as a hierarchy
            // separator in metric names; flatten it.
            let label = bucket.label().replace('/', "of");
            snap.set_counter(&j(&format!("util/{label}")), self.buckets[i]);
        }
    }
}

impl fmt::Display for CompactionTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insns, eff {:.1}%, cycles base/ivb/bcc/scc = {}/{}/{}/{} (bcc -{:.1}%, scc -{:.1}%)",
            self.instructions,
            100.0 * self.simd_efficiency(),
            self.cycles.baseline,
            self.cycles.ivb,
            self.cycles.bcc,
            self.cycles.scc,
            100.0 * self.reduction_vs_ivb(CompactionMode::Bcc),
            100.0 * self.reduction_vs_ivb(CompactionMode::Scc),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_classification() {
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x0003, 16)),
            UtilBucket::S16Active1To4
        );
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x00FF, 16)),
            UtilBucket::S16Active5To8
        );
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x0FFF, 16)),
            UtilBucket::S16Active9To12
        );
        assert_eq!(
            UtilBucket::of(ExecMask::all(16)),
            UtilBucket::S16Active13To16
        );
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x0F, 8)),
            UtilBucket::S8Active1To4
        );
        assert_eq!(UtilBucket::of(ExecMask::all(8)), UtilBucket::S8Active5To8);
        assert_eq!(UtilBucket::of(ExecMask::none(16)), UtilBucket::Other);
        assert_eq!(UtilBucket::of(ExecMask::all(4)), UtilBucket::Other);
    }

    #[test]
    fn efficiency_accumulates() {
        let mut t = CompactionTally::new();
        t.add(ExecMask::all(16), DataType::F);
        t.add(ExecMask::new(0x00FF, 16), DataType::F);
        assert_eq!(t.simd_efficiency(), 0.75);
        assert!(!t.is_coherent());
        let mut c = CompactionTally::new();
        c.add(ExecMask::all(16), DataType::F);
        assert!(c.is_coherent());
    }

    #[test]
    fn reductions_reported_vs_ivb() {
        let mut t = CompactionTally::new();
        // 0xF0F0: ivb 4, bcc 2, scc 2.
        t.add(ExecMask::new(0xF0F0, 16), DataType::F);
        assert_eq!(t.reduction_vs_ivb(CompactionMode::Bcc), 0.5);
        // 0x00FF: ivb already optimizes to 2; bcc also 2: no further gain.
        let mut t2 = CompactionTally::new();
        t2.add(ExecMask::new(0x00FF, 16), DataType::F);
        assert_eq!(t2.reduction_vs_ivb(CompactionMode::Bcc), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CompactionTally::new();
        a.add(ExecMask::all(16), DataType::F);
        let mut b = CompactionTally::new();
        b.add(ExecMask::new(0x1, 16), DataType::F);
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.cycles.baseline, 8);
        assert_eq!(a.cycles.scc, 5);
    }

    #[test]
    fn swizzle_count_matches_schedule() {
        use crate::scc::SccSchedule;
        for bits in (0..=0xFFFFu32).step_by(41) {
            let m = ExecMask::new(bits, 16);
            let mut t = CompactionTally::new();
            t.add(m, DataType::F);
            let sched = SccSchedule::compute(m);
            assert_eq!(
                t.scc_swizzles,
                u64::from(sched.swizzle_count()),
                "mask {bits:#06x}"
            );
        }
    }

    #[test]
    fn bucket_fractions_sum_to_one() {
        let mut t = CompactionTally::new();
        for bits in [0xFFFFu32, 0x00FF, 0x000F, 0x0001] {
            t.add(ExecMask::new(bits, 16), DataType::F);
        }
        let total: f64 = t.bucket_fractions().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
