//! Whole-kernel cycle accounting.
//!
//! [`CompactionTally`] accumulates per-instruction execution masks into the
//! aggregate quantities the paper reports: per-mode EU execution cycles
//! (Fig. 10), SIMD efficiency (Fig. 3), the SIMD utilization breakdown
//! (Fig. 9), and operand-fetch savings.

use crate::cycles::{CompactionMode, CycleBreakdown};
use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SIMD utilization bucket of one instruction (Fig. 9 categories).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilBucket {
    /// SIMD16 instruction with 1–4 active channels (3 cycles saveable).
    S16Active1To4,
    /// SIMD16 with 5–8 active (2 cycles saveable).
    S16Active5To8,
    /// SIMD16 with 9–12 active (1 cycle saveable).
    S16Active9To12,
    /// SIMD16 with 13–16 active (no compaction possible).
    S16Active13To16,
    /// SIMD8 with 1–4 active (1 cycle saveable).
    S8Active1To4,
    /// SIMD8 with 5–8 active (no compaction possible).
    S8Active5To8,
    /// Any other width, or an all-disabled mask.
    Other,
}

impl UtilBucket {
    /// Classifies one mask.
    pub fn of(mask: ExecMask) -> Self {
        let a = mask.active_channels();
        match (mask.width(), a) {
            (_, 0) => Self::Other,
            (16, 1..=4) => Self::S16Active1To4,
            (16, 5..=8) => Self::S16Active5To8,
            (16, 9..=12) => Self::S16Active9To12,
            (16, _) => Self::S16Active13To16,
            (8, 1..=4) => Self::S8Active1To4,
            (8, _) => Self::S8Active5To8,
            _ => Self::Other,
        }
    }

    /// All buckets in Fig. 9 legend order.
    pub const ALL: [UtilBucket; 7] = [
        UtilBucket::S16Active1To4,
        UtilBucket::S16Active5To8,
        UtilBucket::S16Active9To12,
        UtilBucket::S16Active13To16,
        UtilBucket::S8Active1To4,
        UtilBucket::S8Active5To8,
        UtilBucket::Other,
    ];

    /// Fig. 9 legend label.
    pub fn label(self) -> &'static str {
        match self {
            Self::S16Active1To4 => "1-4/16",
            Self::S16Active5To8 => "5-8/16",
            Self::S16Active9To12 => "9-12/16",
            Self::S16Active13To16 => "13-16/16",
            Self::S8Active1To4 => "1-4/8",
            Self::S8Active5To8 => "5-8/8",
            Self::Other => "other",
        }
    }
}

/// Aggregated compaction statistics over an instruction stream.
///
/// # Examples
///
/// ```
/// use iwc_compaction::{CompactionMode, CompactionTally};
/// use iwc_isa::{DataType, ExecMask};
///
/// let mut t = CompactionTally::new();
/// t.add(ExecMask::new(0xF0F0, 16), DataType::F); // BCC halves this one
/// t.add(ExecMask::all(16), DataType::F);         // incompressible
/// assert_eq!(t.simd_efficiency(), 0.75);
/// assert_eq!(t.reduction_vs_ivb(CompactionMode::Bcc), 0.25);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionTally {
    /// Per-mode execution-cycle totals.
    pub cycles: CycleBreakdown,
    /// Number of instructions tallied.
    pub instructions: u64,
    /// Sum of active channels over all instructions.
    pub active_channels: u64,
    /// Sum of SIMD widths over all instructions.
    pub total_channels: u64,
    /// Instruction counts per utilization bucket.
    pub buckets: [u64; 7],
    /// Operand-fetch register-half accesses saved by BCC.
    pub bcc_fetches_saved: u64,
    /// Channels routed through the SCC swizzle crossbar.
    pub scc_swizzles: u64,
}

impl CompactionTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one executed instruction.
    pub fn add(&mut self, mask: ExecMask, dtype: DataType) {
        self.add_delta(&TallyDelta::of(mask, dtype));
    }

    /// Adds a run of `n` identical `(mask, dtype)` instructions in O(1).
    ///
    /// Divergence arrives in runs — loop bodies re-present the same mask
    /// for thousands of records — and every tally field is an integer sum,
    /// so charging the precomputed per-instruction contribution `n` times
    /// multiplicatively is *exactly* equal to `n` repeated
    /// [`add`](Self::add) calls, not merely close.
    pub fn add_run(&mut self, mask: ExecMask, dtype: DataType, n: u64) {
        self.add_delta_scaled(&TallyDelta::of(mask, dtype), n);
    }

    /// Adds `n` repetitions of a precomputed contribution in O(1) — the
    /// run-length counterpart of [`add_delta`](Self::add_delta), identical
    /// to applying the delta `n` times.
    pub fn add_delta_scaled(&mut self, d: &TallyDelta, n: u64) {
        self.cycles.accumulate_scaled(d.cycles, n);
        self.instructions += n;
        self.active_channels += d.active_channels * n;
        self.total_channels += d.total_channels * n;
        self.buckets[d.bucket] += n;
        self.bcc_fetches_saved += d.bcc_fetches_saved * n;
        self.scc_swizzles += d.scc_swizzles * n;
    }

    /// Adds one executed instruction from its precomputed contribution.
    ///
    /// Hot issue paths compute the [`TallyDelta`] once per distinct
    /// `(mask, dtype)` (see [`TallyMemo`]) and apply it to several tallies;
    /// the result is identical to calling [`add`](Self::add) on each.
    pub fn add_delta(&mut self, d: &TallyDelta) {
        self.cycles.accumulate(d.cycles);
        self.instructions += 1;
        self.active_channels += d.active_channels;
        self.total_channels += d.total_channels;
        self.buckets[d.bucket] += 1;
        self.bcc_fetches_saved += d.bcc_fetches_saved;
        self.scc_swizzles += d.scc_swizzles;
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Self) {
        self.cycles.accumulate(other.cycles);
        self.instructions += other.instructions;
        self.active_channels += other.active_channels;
        self.total_channels += other.total_channels;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.bcc_fetches_saved += other.bcc_fetches_saved;
        self.scc_swizzles += other.scc_swizzles;
    }

    /// Kernel SIMD efficiency: average enabled channels / average width
    /// (the Fig. 3 metric).
    pub fn simd_efficiency(&self) -> f64 {
        if self.total_channels == 0 {
            1.0
        } else {
            self.active_channels as f64 / self.total_channels as f64
        }
    }

    /// True when the workload counts as *coherent* under the paper's 95 %
    /// SIMD-efficiency threshold (§5.3).
    pub fn is_coherent(&self) -> bool {
        self.simd_efficiency() >= 0.95
    }

    /// Fraction of instructions in each utilization bucket (Fig. 9 bars).
    pub fn bucket_fractions(&self) -> [(UtilBucket, f64); 7] {
        let n = self.instructions.max(1) as f64;
        let mut out = [(UtilBucket::Other, 0.0); 7];
        for (i, b) in UtilBucket::ALL.iter().enumerate() {
            out[i] = (*b, self.buckets[i] as f64 / n);
        }
        out
    }

    /// EU execution-cycle reduction of `mode` relative to the Ivy Bridge
    /// baseline (the Fig. 10 quantity).
    pub fn reduction_vs_ivb(&self, mode: CompactionMode) -> f64 {
        self.cycles.reduction_vs_ivb(mode)
    }
}

/// Precomputed [`CompactionTally::add`] contribution of one executed
/// instruction. Every field is a pure function of `(mask, dtype)`, so the
/// hot issue path can evaluate the four cycle models, the utilization
/// bucket, and the swizzle cost once per distinct mask and replay the
/// result into several tallies.
#[derive(Clone, Copy, Debug, Default)]
pub struct TallyDelta {
    cycles: CycleBreakdown,
    active_channels: u64,
    total_channels: u64,
    bucket: usize,
    bcc_fetches_saved: u64,
    scc_swizzles: u64,
}

impl TallyDelta {
    /// Computes the contribution of one `(mask, dtype)` instruction.
    pub fn of(mask: ExecMask, dtype: DataType) -> Self {
        let bucket = UtilBucket::of(mask);
        // Fetch/swizzle accounting assumes a representative 2-source op.
        let idle_quads = u64::from(mask.quad_count() - mask.active_quads().min(mask.quad_count()));
        Self {
            cycles: CycleBreakdown::of(mask, dtype),
            active_channels: u64::from(mask.active_channels()),
            total_channels: u64::from(mask.width()),
            bucket: UtilBucket::ALL
                .iter()
                .position(|&b| b == bucket)
                .expect("bucket in ALL"),
            bcc_fetches_saved: 2 * idle_quads,
            // Exact swizzled-channel count of the Fig. 6 algorithm, served
            // from the process-wide schedule memo (O(1) on repeated masks).
            scc_swizzles: u64::from(crate::scc::SccCost::of(mask).swizzles),
        }
    }
}

/// Direct-mapped memo over [`TallyDelta::of`].
///
/// The memo is transparent: `delta` always returns exactly
/// [`TallyDelta::of`]`(mask, dtype)`, whatever the way count and whatever
/// was cached before, so sizing and reuse are pure performance choices.
/// Collisions just recompute. Two sizes matter in practice:
///
/// * the [`Default`] memo ([`TallyMemo::DEFAULT_WAYS`]) — an EU's issue
///   path interleaves a handful of threads whose masks repeat, so a few
///   ways keep all of them resident at negligible footprint;
/// * the analyzer memo ([`TallyMemo::ANALYZER_WAYS`]) — divergence traces
///   carry thousands of *distinct* masks (the expanded corpus peaks past
///   20k per trace), which thrashes a small memo into recomputing the
///   four cycle models and the SCC swizzle cost nearly every run. Sized
///   to the full SIMD16 mask space, misses are collisions only.
#[derive(Clone, Debug)]
pub struct TallyMemo {
    /// Right-shift applied to the 32-bit Fibonacci product: keeps the top
    /// `log2(ways)` bits, so the table length is always a power of two.
    shift: u32,
    keys: Vec<Option<(u32, u32, DataType)>>,
    deltas: Vec<TallyDelta>,
}

impl Default for TallyMemo {
    fn default() -> Self {
        Self::with_ways(Self::DEFAULT_WAYS)
    }
}

impl TallyMemo {
    /// Way count of the [`Default`] memo, sized for issue paths tracking
    /// a few resident threads.
    pub const DEFAULT_WAYS: usize = 64;
    /// Way count for whole-trace analysis: one way per SIMD16 mask bit
    /// pattern (~5 MiB of deltas), so working sets of tens of thousands
    /// of distinct masks stay resident.
    pub const ANALYZER_WAYS: usize = 1 << 16;

    /// A memo with `ways` slots, rounded up to a power of two (minimum 2,
    /// keeping the hash shift below the u32 width).
    pub fn with_ways(ways: usize) -> Self {
        let ways = ways.next_power_of_two().max(2);
        Self {
            shift: 32 - ways.trailing_zeros(),
            keys: vec![None; ways],
            deltas: vec![TallyDelta::default(); ways],
        }
    }

    /// The tally contribution of `(mask, dtype)`, computed or replayed.
    pub fn delta(&mut self, mask: ExecMask, dtype: DataType) -> TallyDelta {
        let key = (mask.bits(), mask.width(), dtype);
        // Fibonacci hashing over all three key fields: the multiply
        // spreads low-bit differences into the kept top bits, so masks
        // differing only in width or dtype land in different ways.
        let h = key.0 ^ (key.1 << 16) ^ ((dtype as u32) << 22);
        let way = (h.wrapping_mul(0x9E37_79B9) >> self.shift) as usize;
        if self.keys[way] != Some(key) {
            self.deltas[way] = TallyDelta::of(mask, dtype);
            self.keys[way] = Some(key);
        }
        self.deltas[way]
    }
}

impl iwc_telemetry::Instrument for CompactionTally {
    fn publish(&self, prefix: &str, snap: &mut iwc_telemetry::TelemetrySnapshot) {
        let j = |name: &str| iwc_telemetry::join(prefix, name);
        snap.set_counter(&j("instructions"), self.instructions);
        snap.set_counter(&j("active_channels"), self.active_channels);
        snap.set_counter(&j("total_channels"), self.total_channels);
        snap.set_counter(&j("bcc_fetches_saved"), self.bcc_fetches_saved);
        snap.set_counter(&j("scc_swizzles"), self.scc_swizzles);
        for mode in CompactionMode::ALL {
            snap.set_counter(&j(&format!("cycles/{mode}")), self.cycles.get(mode));
        }
        for (i, bucket) in UtilBucket::ALL.iter().enumerate() {
            // Bucket labels contain '/', which reads as a hierarchy
            // separator in metric names; flatten it.
            let label = bucket.label().replace('/', "of");
            snap.set_counter(&j(&format!("util/{label}")), self.buckets[i]);
        }
    }
}

impl fmt::Display for CompactionTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insns, eff {:.1}%, cycles base/ivb/bcc/scc = {}/{}/{}/{} (bcc -{:.1}%, scc -{:.1}%)",
            self.instructions,
            100.0 * self.simd_efficiency(),
            self.cycles.baseline,
            self.cycles.ivb,
            self.cycles.bcc,
            self.cycles.scc,
            100.0 * self.reduction_vs_ivb(CompactionMode::Bcc),
            100.0 * self.reduction_vs_ivb(CompactionMode::Scc),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_classification() {
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x0003, 16)),
            UtilBucket::S16Active1To4
        );
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x00FF, 16)),
            UtilBucket::S16Active5To8
        );
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x0FFF, 16)),
            UtilBucket::S16Active9To12
        );
        assert_eq!(
            UtilBucket::of(ExecMask::all(16)),
            UtilBucket::S16Active13To16
        );
        assert_eq!(
            UtilBucket::of(ExecMask::new(0x0F, 8)),
            UtilBucket::S8Active1To4
        );
        assert_eq!(UtilBucket::of(ExecMask::all(8)), UtilBucket::S8Active5To8);
        assert_eq!(UtilBucket::of(ExecMask::none(16)), UtilBucket::Other);
        assert_eq!(UtilBucket::of(ExecMask::all(4)), UtilBucket::Other);
    }

    #[test]
    fn efficiency_accumulates() {
        let mut t = CompactionTally::new();
        t.add(ExecMask::all(16), DataType::F);
        t.add(ExecMask::new(0x00FF, 16), DataType::F);
        assert_eq!(t.simd_efficiency(), 0.75);
        assert!(!t.is_coherent());
        let mut c = CompactionTally::new();
        c.add(ExecMask::all(16), DataType::F);
        assert!(c.is_coherent());
    }

    #[test]
    fn reductions_reported_vs_ivb() {
        let mut t = CompactionTally::new();
        // 0xF0F0: ivb 4, bcc 2, scc 2.
        t.add(ExecMask::new(0xF0F0, 16), DataType::F);
        assert_eq!(t.reduction_vs_ivb(CompactionMode::Bcc), 0.5);
        // 0x00FF: ivb already optimizes to 2; bcc also 2: no further gain.
        let mut t2 = CompactionTally::new();
        t2.add(ExecMask::new(0x00FF, 16), DataType::F);
        assert_eq!(t2.reduction_vs_ivb(CompactionMode::Bcc), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CompactionTally::new();
        a.add(ExecMask::all(16), DataType::F);
        let mut b = CompactionTally::new();
        b.add(ExecMask::new(0x1, 16), DataType::F);
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.cycles.baseline, 8);
        assert_eq!(a.cycles.scc, 5);
    }

    #[test]
    fn swizzle_count_matches_schedule() {
        use crate::scc::SccSchedule;
        for bits in (0..=0xFFFFu32).step_by(41) {
            let m = ExecMask::new(bits, 16);
            let mut t = CompactionTally::new();
            t.add(m, DataType::F);
            let sched = SccSchedule::compute(m);
            assert_eq!(
                t.scc_swizzles,
                u64::from(sched.swizzle_count()),
                "mask {bits:#06x}"
            );
        }
    }

    #[test]
    fn add_run_equals_repeated_adds() {
        for bits in [0xFFFFu32, 0xF0F0, 0xAAAA, 0x0001, 0x0000] {
            let m = ExecMask::new(bits, 16);
            for dtype in [DataType::F, DataType::Df, DataType::Uw] {
                let mut runs = CompactionTally::new();
                runs.add_run(m, dtype, 7);
                let mut scalar = CompactionTally::new();
                for _ in 0..7 {
                    scalar.add(m, dtype);
                }
                assert_eq!(runs, scalar, "mask {bits:#06x} {dtype:?}");
            }
        }
        let mut zero = CompactionTally::new();
        zero.add_run(ExecMask::all(16), DataType::F, 0);
        assert_eq!(zero, CompactionTally::new(), "zero-length run is a no-op");
    }

    #[test]
    fn memo_is_transparent_at_any_size_and_state() {
        // Stream a working set far past the small memo's way count
        // through memos of several sizes (including the pathological
        // 2-way one) twice over, comparing every delta against a direct
        // recompute by applying both to tallies.
        for ways in [1, 2, 64, TallyMemo::ANALYZER_WAYS] {
            let mut memo = TallyMemo::with_ways(ways);
            for pass in 0..2 {
                for i in 0..1000u32 {
                    let bits = i.wrapping_mul(0x9E37).wrapping_add(pass) & 0xFFFF;
                    let m = ExecMask::new(bits, 16);
                    let dtype = if i % 3 == 0 { DataType::F } else { DataType::D };
                    let mut via_memo = CompactionTally::new();
                    via_memo.add_delta(&memo.delta(m, dtype));
                    let mut direct = CompactionTally::new();
                    direct.add(m, dtype);
                    assert_eq!(via_memo, direct, "ways {ways} pass {pass} mask {bits:#06x}");
                }
            }
        }
    }

    #[test]
    fn bucket_fractions_sum_to_one() {
        let mut t = CompactionTally::new();
        for bits in [0xFFFFu32, 0x00FF, 0x000F, 0x0001] {
            t.add(ExecMask::new(bits, 16), DataType::F);
        }
        let total: f64 = t.bucket_fractions().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
