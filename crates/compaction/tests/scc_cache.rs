//! Equivalence of the memoized, allocation-free SCC fast path against the
//! literal Fig. 6 reference implementation.

use iwc_compaction::{SccCost, SccSchedule};
use iwc_isa::ExecMask;
use proptest::prelude::*;

/// Every SIMD16 mask: the memo table, the allocation-free algorithm, and
/// the reference algorithm must produce identical schedules, and the
/// schedule must satisfy the structural invariants.
#[test]
fn exhaustive_simd16_equivalence() {
    for bits in 0..=0xFFFFu32 {
        let m = ExecMask::new(bits, 16);
        let cached = SccSchedule::compute(m);
        let uncached = SccSchedule::compute_uncached(m);
        let reference = SccSchedule::compute_reference(m);
        assert_eq!(cached, uncached, "memoized vs uncached, mask {bits:#06x}");
        assert_eq!(
            uncached, reference,
            "uncached vs reference, mask {bits:#06x}"
        );
        cached
            .validate()
            .unwrap_or_else(|e| panic!("mask {bits:#06x}: {e}"));
        let cost = SccCost::of(m);
        assert_eq!(
            u32::from(cost.cycles),
            reference.cycle_count(),
            "mask {bits:#06x}"
        );
        assert_eq!(
            u32::from(cost.swizzles),
            reference.swizzle_count(),
            "mask {bits:#06x}"
        );
        assert_eq!(cost.bcc_like, reference.is_bcc_like(), "mask {bits:#06x}");
    }
}

/// The ≤16 memo table is shared across widths; spot-check that SIMD8 and
/// SIMD4 retrievals agree with a direct reference computation at their own
/// width.
#[test]
fn exhaustive_narrow_width_equivalence() {
    for bits in 0..=0xFFu32 {
        for width in [4u32, 8] {
            let m = ExecMask::new(bits, width);
            let cached = SccSchedule::compute(m);
            let reference = SccSchedule::compute_reference(m);
            assert_eq!(cached, reference, "width {width}, mask {bits:#04x}");
            cached
                .validate()
                .unwrap_or_else(|e| panic!("width {width}, mask {bits:#04x}: {e}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Random SIMD32 masks: per-thread cache, allocation-free algorithm,
    /// and reference must agree (the 2^32 space rules out exhaustion).
    #[test]
    fn simd32_equivalence(bits in any::<u32>()) {
        let m = ExecMask::new(bits, 32);
        let cached = SccSchedule::compute(m);
        let uncached = SccSchedule::compute_uncached(m);
        let reference = SccSchedule::compute_reference(m);
        prop_assert_eq!(cached, uncached, "memoized vs uncached, mask {:#010x}", bits);
        prop_assert_eq!(uncached, reference, "uncached vs reference, mask {:#010x}", bits);
        cached.validate().unwrap();
    }

    /// A second retrieval must be byte-identical to the first (cache never
    /// mutates or corrupts an entry).
    #[test]
    fn repeated_lookup_stable(bits in any::<u32>(), width in prop_oneof![Just(8u32), Just(16), Just(32)]) {
        let m = ExecMask::new(bits, width);
        let first = SccSchedule::compute(m);
        let second = SccSchedule::compute(m);
        prop_assert_eq!(first, second);
        prop_assert_eq!(first.mask(), m);
    }
}
