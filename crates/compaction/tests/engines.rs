//! Integration tests of the pluggable engine layer: the mode-ordering
//! invariant proved exhaustively *through the trait objects* (the way the
//! simulator consumes engines), and the correctness contract of the
//! distance-limited `SccLimited` ablation engine.

use iwc_compaction::{
    CompactionEngine, CompactionMode, EngineId, EngineRegistry, SccLimited, SccSchedule,
};
use iwc_isa::mask::ExecMask;
use iwc_isa::types::DataType;
use std::sync::Arc;

fn m16(bits: u32) -> ExecMask {
    ExecMask::new(bits, 16)
}

/// Stronger compaction never costs cycles: for every one of the 65,536
/// SIMD16 masks, `scc ≤ bcc ≤ ivb ≤ baseline`, evaluated through
/// registry-resolved trait objects exactly as the simulator does.
#[test]
fn exhaustive_mode_ordering_through_trait_objects() {
    let engines: Vec<Arc<dyn CompactionEngine>> =
        EngineId::CANONICAL.iter().map(|&id| id.engine()).collect();
    let [base, ivb, bcc, scc] = &engines[..] else {
        panic!("canonical order must have four engines");
    };
    for bits in 0..=0xFFFFu32 {
        let mask = m16(bits);
        let (b, i, c, s) = (
            base.cycles(mask, DataType::F),
            ivb.cycles(mask, DataType::F),
            bcc.cycles(mask, DataType::F),
            scc.cycles(mask, DataType::F),
        );
        assert!(
            s <= c && c <= i && i <= b,
            "mask {bits:#06x}: scc {s} ≤ bcc {c} ≤ ivb {i} ≤ base {b} violated"
        );
    }
}

/// The registry's canonical ordering is the documented weakest-to-strongest
/// sweep order and agrees with the legacy `CompactionMode::ALL`.
#[test]
fn canonical_ordering_is_weakest_to_strongest() {
    let labels: Vec<String> = EngineId::CANONICAL.iter().map(|id| id.label()).collect();
    assert_eq!(labels, ["base", "ivb", "bcc", "scc"]);
    for (id, mode) in EngineId::CANONICAL.iter().zip(CompactionMode::ALL) {
        assert_eq!(id.mode(), Some(mode));
        assert_eq!(EngineId::from(mode), *id);
    }
}

/// A full-reach crossbar (`k = 3` on SIMD16: three quads on either side)
/// loses nothing: its cycle count equals full SCC on every mask, through
/// the trait objects, exhaustively.
#[test]
fn limited_full_reach_matches_scc_exhaustively() {
    let k3: Arc<dyn CompactionEngine> = SccLimited::register(3).engine();
    let scc: Arc<dyn CompactionEngine> = EngineId::SCC.engine();
    for bits in 0..=0xFFFFu32 {
        let mask = m16(bits);
        assert_eq!(
            k3.cycles(mask, DataType::F),
            scc.cycles(mask, DataType::F),
            "mask {bits:#06x}: SccLimited(3) must match full SCC"
        );
    }
}

/// Every `SccLimited(k)` schedule issues each active channel exactly once
/// and never an inactive one, and its write-back unswizzle is the exact
/// inverse of the operand swizzle (§4.2): routing lane `n`'s result back to
/// `(quad, home_lane)` lands on the channel that was issued there.
#[test]
fn limited_schedules_issue_once_and_unswizzle_inverts() {
    for k in 0..=3u8 {
        let eng = SccLimited::new(k);
        for bits in (0..=0xFFFFu32).step_by(23) {
            let mask = m16(bits);
            let sched = eng.limited_schedule(mask);
            sched
                .validate_issue()
                .unwrap_or_else(|e| panic!("mask {bits:#06x} k={k}: {e}"));
            for c in 0..sched.cycle_count() as usize {
                let issued = sched.issued_channels(c);
                let back = sched.unswizzle(c);
                for (n, (ch, home)) in issued.iter().zip(&back).enumerate() {
                    match (ch, home) {
                        (None, None) => {}
                        (Some(ch), Some((quad, lane))) => assert_eq!(
                            *ch,
                            u32::from(*quad) * 4 + u32::from(*lane),
                            "mask {bits:#06x} k={k} cycle {c} lane {n}: \
                             unswizzle must return the issued channel home"
                        ),
                        other => panic!(
                            "mask {bits:#06x} k={k} cycle {c} lane {n}: \
                             swizzle/unswizzle disagree on occupancy: {other:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Reach buys cycles monotonically: `scc ≤ limited(k+1) ≤ limited(k) ≤ bcc`
/// on 4-byte types, so the ablation sweep is guaranteed to interpolate
/// between the two paper designs.
#[test]
fn limited_interpolates_between_scc_and_bcc() {
    let engines: Vec<Arc<dyn CompactionEngine>> =
        (0..=3).map(|k| SccLimited::register(k).engine()).collect();
    let bcc = EngineId::BCC.engine();
    let scc = EngineId::SCC.engine();
    for bits in (0..=0xFFFFu32).step_by(19) {
        let mask = m16(bits);
        let cycles: Vec<u32> = engines
            .iter()
            .map(|e| e.cycles(mask, DataType::F))
            .collect();
        for (k, pair) in cycles.windows(2).enumerate() {
            assert!(
                pair[1] <= pair[0],
                "mask {bits:#06x}: limited(k={}) {} > limited(k={k}) {}",
                k + 1,
                pair[1],
                pair[0]
            );
        }
        assert!(
            cycles[0] <= bcc.cycles(mask, DataType::F),
            "mask {bits:#06x}"
        );
        assert!(
            scc.cycles(mask, DataType::F) <= cycles[3],
            "mask {bits:#06x}"
        );
    }
}

/// On every data type, a bounded crossbar never beats the full one: full
/// SCC is a lower bound for `SccLimited(k)` cycles.
#[test]
fn limited_never_beats_scc_on_any_dtype() {
    let scc = EngineId::SCC.engine();
    for k in [0u8, 1, 3] {
        let eng = SccLimited::register(k).engine();
        for bits in (0..=0xFFFFu32).step_by(31) {
            let mask = m16(bits);
            for dt in [DataType::Ub, DataType::Hf, DataType::F, DataType::Df] {
                assert!(
                    scc.cycles(mask, dt) <= eng.cycles(mask, dt),
                    "mask {bits:#06x} k={k} {dt:?}: limited beats full SCC"
                );
            }
        }
    }
}

/// The registry resolves ablation engines by label, idempotently, and their
/// schedules agree with the memoized full-SCC schedule whenever the early
/// exit applies (a BCC-like mask needs no swizzling at any reach).
#[test]
fn registry_roundtrip_and_bcc_like_masks() {
    let id = SccLimited::register(2);
    assert_eq!(EngineRegistry::global().find("scc-k2"), Some(id));
    assert_eq!(SccLimited::register(2), id);

    // 0x00F0: one fully active quad — BCC-like, identical at every reach.
    let full = SccSchedule::compute(m16(0x00F0));
    for k in 0..=3u8 {
        let sched = SccLimited::new(k).limited_schedule(m16(0x00F0));
        assert_eq!(sched.cycle_count(), full.cycle_count());
        assert_eq!(sched.swizzle_count(), 0);
    }
}
