//! Property-based tests of the intra-warp compaction invariants
//! (DESIGN.md §5 invariants 1 and 2).

use iwc_compaction::{waves, CompactionMode, SccSchedule};
use iwc_isa::{DataType, ExecMask};
use proptest::prelude::*;

fn arb_mask() -> impl Strategy<Value = ExecMask> {
    (
        any::<u32>(),
        prop_oneof![Just(4u32), Just(8), Just(16), Just(32)],
    )
        .prop_map(|(bits, width)| ExecMask::new(bits, width))
}

proptest! {
    /// Invariant 1: scc <= bcc <= ivb <= baseline, and at least 1 wave.
    #[test]
    fn mode_ordering(mask in arb_mask()) {
        let b = waves(mask, CompactionMode::Baseline);
        let i = waves(mask, CompactionMode::IvyBridge);
        let c = waves(mask, CompactionMode::Bcc);
        let s = waves(mask, CompactionMode::Scc);
        prop_assert!(s <= c, "scc {s} > bcc {c} for {mask}");
        prop_assert!(c <= i, "bcc {c} > ivb {i} for {mask}");
        prop_assert!(i <= b, "ivb {i} > base {b} for {mask}");
        prop_assert!(s >= 1);
        prop_assert_eq!(b, mask.quad_count());
    }

    /// SCC achieves exactly the information-theoretic optimum.
    #[test]
    fn scc_is_optimal(mask in arb_mask()) {
        let s = waves(mask, CompactionMode::Scc);
        prop_assert_eq!(s, mask.active_channels().div_ceil(4).max(1));
    }

    /// Invariant 2: the SCC schedule issues every active channel exactly
    /// once and nothing else.
    #[test]
    fn scc_schedule_valid(mask in arb_mask()) {
        let sched = SccSchedule::compute(mask);
        prop_assert!(sched.validate().is_ok(), "{:?}", sched.validate());
        prop_assert_eq!(sched.cycle_count(), waves(mask, CompactionMode::Scc));
    }

    /// A full mask is never compressed (no false savings on coherent code).
    #[test]
    fn full_masks_never_compressed(width in prop_oneof![Just(8u32), Just(16), Just(32)]) {
        let m = ExecMask::all(width);
        for mode in CompactionMode::ALL {
            prop_assert_eq!(waves(m, mode), width / 4);
        }
    }

    /// BCC never swizzles: a schedule with the same cycle count as BCC is
    /// reported as bcc-like with zero swizzles.
    #[test]
    fn bcc_like_schedules_have_no_swizzles(mask in arb_mask()) {
        let sched = SccSchedule::compute(mask);
        if sched.is_bcc_like() {
            prop_assert_eq!(sched.swizzle_count(), 0);
        }
    }

    /// Data-type granularity: 64-bit cycles are between 1x and 2x the
    /// 32-bit cycles (exactly 2x for the uncompressed baseline), and
    /// 16-bit cycles are between half and equal.
    #[test]
    fn dtype_granularity_bounds(mask in arb_mask()) {
        use iwc_compaction::execution_cycles;
        for mode in CompactionMode::ALL {
            let f = execution_cycles(mask, DataType::F, mode);
            let df = execution_cycles(mask, DataType::Df, mode);
            let hf = execution_cycles(mask, DataType::Hf, mode);
            prop_assert!(df >= f && df <= 2 * f, "df {df} vs f {f} under {mode}");
            prop_assert!(hf <= f && 2 * hf >= f, "hf {hf} vs f {f} under {mode}");
        }
        prop_assert_eq!(
            execution_cycles(mask, DataType::Df, CompactionMode::Baseline),
            2 * execution_cycles(mask, DataType::F, CompactionMode::Baseline)
        );
    }

    /// Mode ordering holds at every data-type granularity.
    #[test]
    fn mode_ordering_all_dtypes(mask in arb_mask()) {
        use iwc_compaction::waves_typed;
        for dt in [DataType::Ub, DataType::Hf, DataType::F, DataType::Df] {
            let b = waves_typed(mask, dt, CompactionMode::Baseline);
            let i = waves_typed(mask, dt, CompactionMode::IvyBridge);
            let c = waves_typed(mask, dt, CompactionMode::Bcc);
            let s = waves_typed(mask, dt, CompactionMode::Scc);
            prop_assert!(s <= c && c <= i && i <= b, "{dt}: {s} {c} {i} {b}");
        }
    }

    /// Swizzling only happens when BCC alone would be suboptimal.
    #[test]
    fn swizzles_imply_gain_over_bcc(mask in arb_mask()) {
        let sched = SccSchedule::compute(mask);
        if sched.swizzle_count() > 0 {
            prop_assert!(
                waves(mask, CompactionMode::Scc) < waves(mask, CompactionMode::Bcc),
                "swizzled but no gain for {mask}"
            );
        }
    }
}

/// Exhaustive check over every SIMD16 mask: schedule validity and mode
/// ordering (not random — all 65536 cases).
#[test]
fn exhaustive_simd16() {
    for bits in 0..=0xFFFFu32 {
        let m = ExecMask::new(bits, 16);
        let sched = SccSchedule::compute(m);
        if let Err(e) = sched.validate() {
            panic!("mask {bits:#06x}: {e}");
        }
        assert!(waves(m, CompactionMode::Scc) <= waves(m, CompactionMode::Bcc));
        assert!(waves(m, CompactionMode::Bcc) <= waves(m, CompactionMode::IvyBridge));
    }
}
