//! Criterion benchmarks of the two functional interpreters: the decoded
//! micro-op plans (`ExecBackend::Decoded`, the production backend) against
//! the reference `Scalar`-semantics interpreter, on an ALU-bound
//! straight-line kernel (isolating per-instruction interpreter cost from
//! the memory-system model) and on a divergent full workload.
//!
//! Two properties are enforced by inspection of the report:
//! * `interpreter/alu_chain/decoded` vs `.../reference` is the
//!   per-instruction speedup headline (target ≥2×, see ISSUE 5).
//! * `interpreter/alu_chain/decoded` vs `.../decoded+recording` bounds the
//!   cost of the outlined recording path — the default (flags-off) path
//!   carries a single predictable branch, so the flags-off number must not
//!   regress when recording features evolve.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwc_isa::{DataType, KernelBuilder, MemSpace, Opcode, Operand};
use iwc_sim::{simulate, ExecBackend, GpuConfig, Launch, MemoryImage};
use iwc_workloads::rodinia;

/// Straight-line kernel of `n` dependent ALU ops per lane (F fast path),
/// bracketed by one load and one store so results stay observable.
fn alu_chain(n: u32) -> (Launch, MemoryImage) {
    let mut img = MemoryImage::new(1 << 16);
    let lanes = 256u32;
    let src: Vec<f32> = (0..lanes).map(|i| 1.0 + i as f32 * 1.0e-3).collect();
    let a = img.alloc_f32(&src);
    let out = img.alloc(lanes * 4);

    let mut b = KernelBuilder::new("alu_chain", 16);
    let addr = Operand::rud(10);
    let x = Operand::rf(12);
    let y = Operand::rf(14);
    b.mad(
        addr,
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.load(MemSpace::Global, x, addr);
    b.mov(y, x);
    for i in 0..n {
        match i % 4 {
            0 => b.mad(y, y, x, Operand::imm_f(0.5)),
            1 => b.mul(y, y, Operand::imm_f(0.999)),
            2 => b.add(y, y, Operand::imm_f(-0.125)),
            _ => b.min(y, y, Operand::imm_f(1.0e6)),
        };
    }
    b.op(Opcode::Frc, y, &[y]);
    b.mad(
        addr,
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 1, DataType::Ud),
    );
    b.store(MemSpace::Global, addr, y);
    let launch = Launch::new(b.finish().expect("valid kernel"), lanes, 16).with_args(&[a, out]);
    (launch, img)
}

fn bench_alu_chain(c: &mut Criterion) {
    let (launch, img) = alu_chain(512);
    let mut g = c.benchmark_group("interpreter/alu_chain");
    g.sample_size(20);
    let cases = [
        (
            "decoded",
            GpuConfig::paper_default().with_exec(ExecBackend::Decoded),
        ),
        (
            "reference",
            GpuConfig::paper_default().with_exec(ExecBackend::Reference),
        ),
        (
            "decoded+recording",
            GpuConfig::paper_default()
                .with_exec(ExecBackend::Decoded)
                .with_mask_capture(true)
                .with_issue_log(true)
                .with_insn_profile(true),
        ),
    ];
    for (name, cfg) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = img.clone();
                simulate(black_box(&cfg), black_box(&launch), &mut m).expect("runs")
            })
        });
    }
    g.finish();
}

fn bench_divergent_workload(c: &mut Criterion) {
    let built = rodinia::particle_filter(1);
    let mut g = c.benchmark_group("interpreter/particle_filter");
    g.sample_size(10);
    for (name, exec) in [
        ("decoded", ExecBackend::Decoded),
        ("reference", ExecBackend::Reference),
    ] {
        let cfg = GpuConfig::paper_default().with_exec(exec);
        g.bench_function(name, |b| {
            b.iter(|| built.run(black_box(&cfg)).expect("runs"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alu_chain, bench_divergent_workload);
criterion_main!(benches);
