//! Criterion micro-benchmarks of the compaction control logic: the cycle
//! models and the SCC swizzle-settings algorithm (which real hardware must
//! evaluate between decode and issue, §2.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwc_compaction::{execution_cycles, expand, CompactionMode, CompactionTally, SccSchedule};
use iwc_isa::insn::{Instruction, Opcode};
use iwc_isa::reg::Operand;
use iwc_isa::{DataType, ExecMask};

fn masks() -> Vec<ExecMask> {
    // A representative mix: full, half-idle, quad patterns, strided, sparse.
    [
        0xFFFFu32, 0x00FF, 0xF0F0, 0xAAAA, 0x1111, 0x8421, 0x0001, 0x7F3F,
    ]
    .iter()
    .map(|&b| ExecMask::new(b, 16))
    .collect()
}

/// A recorded mask stream from the divergent trace corpus — the workload the
/// schedule memo actually sees in the simulator's per-instruction path.
fn recorded_stream(len: usize) -> Vec<(ExecMask, DataType)> {
    let trace = iwc_trace::corpus()[0].generate(len);
    trace.records.iter().map(|r| (r.mask(), r.dtype)).collect()
}

fn bench_cycle_models(c: &mut Criterion) {
    let ms = masks();
    let mut g = c.benchmark_group("cycle_model");
    for mode in CompactionMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| {
                let mut total = 0u32;
                for &m in &ms {
                    total += execution_cycles(black_box(m), DataType::F, mode);
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_scc_schedule(c: &mut Criterion) {
    let ms = masks();
    c.bench_function("scc_schedule/mixed8", |b| {
        b.iter(|| {
            let mut cycles = 0u32;
            for &m in &ms {
                cycles += SccSchedule::compute(black_box(m)).cycle_count();
            }
            cycles
        })
    });
    c.bench_function("scc_schedule/worst_case_aaaa", |b| {
        let m = ExecMask::new(0xAAAA, 16);
        b.iter(|| SccSchedule::compute(black_box(m)))
    });
}

fn bench_microop_expansion(c: &mut Criterion) {
    let insn = Instruction::alu(
        Opcode::Add,
        16,
        DataType::F,
        Operand::rf(12),
        &[Operand::rf(8), Operand::rf(10)],
    );
    let m = ExecMask::new(0xF0F0, 16);
    let mut g = c.benchmark_group("microop_expand");
    for mode in CompactionMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| expand(black_box(&insn), black_box(m), mode))
        });
    }
    g.finish();
}

/// Cached vs uncached vs reference schedule construction over a recorded
/// mask stream: the memo turns the Fig. 6 algorithm into a table lookup on
/// repeated masks, which is the common case in real traces.
fn bench_schedule_cache(c: &mut Criterion) {
    let stream = recorded_stream(4096);
    let mut g = c.benchmark_group("scc_schedule_stream");
    g.bench_function("cached", |b| {
        // Warm the memo once so the steady-state lookup path is measured.
        for &(m, _) in &stream {
            SccSchedule::compute(m);
        }
        b.iter(|| {
            let mut cycles = 0u32;
            for &(m, _) in &stream {
                cycles += SccSchedule::compute(black_box(m)).cycle_count();
            }
            cycles
        })
    });
    g.bench_function("uncached", |b| {
        b.iter(|| {
            let mut cycles = 0u32;
            for &(m, _) in &stream {
                cycles += SccSchedule::compute_uncached(black_box(m)).cycle_count();
            }
            cycles
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut cycles = 0u32;
            for &(m, _) in &stream {
                cycles += SccSchedule::compute_reference(black_box(m)).cycle_count();
            }
            cycles
        })
    });
    g.finish();
}

/// `CompactionTally::add` throughput on the same recorded stream — the
/// simulator's per-instruction accounting path, O(1) per mask once the
/// schedule memo is warm.
fn bench_tally_add(c: &mut Criterion) {
    let stream = recorded_stream(4096);
    c.bench_function("tally_add/recorded_stream", |b| {
        b.iter(|| {
            let mut tally = CompactionTally::new();
            for &(m, dt) in &stream {
                tally.add(black_box(m), dt);
            }
            tally
        })
    });
}

criterion_group!(
    benches,
    bench_cycle_models,
    bench_scc_schedule,
    bench_schedule_cache,
    bench_tally_add,
    bench_microop_expansion
);
criterion_main!(benches);
