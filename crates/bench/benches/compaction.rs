//! Criterion micro-benchmarks of the compaction control logic: the cycle
//! models and the SCC swizzle-settings algorithm (which real hardware must
//! evaluate between decode and issue, §2.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwc_compaction::{execution_cycles, expand, CompactionMode, SccSchedule};
use iwc_isa::insn::{Instruction, Opcode};
use iwc_isa::reg::Operand;
use iwc_isa::{DataType, ExecMask};

fn masks() -> Vec<ExecMask> {
    // A representative mix: full, half-idle, quad patterns, strided, sparse.
    [0xFFFFu32, 0x00FF, 0xF0F0, 0xAAAA, 0x1111, 0x8421, 0x0001, 0x7F3F]
        .iter()
        .map(|&b| ExecMask::new(b, 16))
        .collect()
}

fn bench_cycle_models(c: &mut Criterion) {
    let ms = masks();
    let mut g = c.benchmark_group("cycle_model");
    for mode in CompactionMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| {
                let mut total = 0u32;
                for &m in &ms {
                    total += execution_cycles(black_box(m), DataType::F, mode);
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_scc_schedule(c: &mut Criterion) {
    let ms = masks();
    c.bench_function("scc_schedule/mixed8", |b| {
        b.iter(|| {
            let mut cycles = 0u32;
            for &m in &ms {
                cycles += SccSchedule::compute(black_box(m)).cycle_count();
            }
            cycles
        })
    });
    c.bench_function("scc_schedule/worst_case_aaaa", |b| {
        let m = ExecMask::new(0xAAAA, 16);
        b.iter(|| SccSchedule::compute(black_box(m)))
    });
}

fn bench_microop_expansion(c: &mut Criterion) {
    let insn = Instruction::alu(
        Opcode::Add,
        16,
        DataType::F,
        Operand::rf(12),
        &[Operand::rf(8), Operand::rf(10)],
    );
    let m = ExecMask::new(0xF0F0, 16);
    let mut g = c.benchmark_group("microop_expand");
    for mode in CompactionMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| expand(black_box(&insn), black_box(m), mode))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cycle_models, bench_scc_schedule, bench_microop_expansion);
criterion_main!(benches);
