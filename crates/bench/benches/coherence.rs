//! Criterion benchmarks of the mask-coherence fast paths (ISSUE 10):
//! run-length tallying against the per-record scalar fold, and convergent
//! burst issue against per-plan arbitration on an ALU-heavy loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwc_isa::{CondOp, DataType, FlagReg, KernelBuilder, MemSpace, Operand, Predicate};
use iwc_sim::{simulate, BurstMode, GpuConfig, Launch, MemoryImage};
use iwc_trace::{analyze, corpus, for_each_run, SliceSource, Trace};

/// Per-record scalar reference: what every analyzer did before runs.
fn tally_scalar(trace: &Trace) -> iwc_compaction::CompactionTally {
    let mut tally = iwc_compaction::CompactionTally::new();
    for r in &trace.records {
        tally.add(r.mask(), r.dtype);
    }
    tally
}

/// Run-length path: fold maximal runs, charge each multiplicatively.
fn tally_runs(trace: &Trace) -> iwc_compaction::CompactionTally {
    let mut tally = iwc_compaction::CompactionTally::new();
    for_each_run(&mut SliceSource::from(trace), |r, n| {
        tally.add_run(r.mask(), r.dtype, n);
    })
    .expect("slice sources cannot fail");
    tally
}

fn bench_tally_scalar_vs_rle(c: &mut Criterion) {
    let trace = corpus()[0].generate(50_000);
    let mut g = c.benchmark_group("coherence/tally_50k");
    g.bench_function("scalar", |b| b.iter(|| tally_scalar(black_box(&trace))));
    g.bench_function("runs", |b| b.iter(|| tally_runs(black_box(&trace))));
    g.bench_function("analyze", |b| b.iter(|| analyze(black_box(&trace))));
    g.finish();
}

/// Single-thread convergent loop whose 24-instruction hazard-free ALU
/// body becomes I$-resident after one iteration — the burst fast path's
/// target shape (mirrors `crates/sim/tests/burst_equivalence.rs`).
fn convergent_loop(iters: u32) -> (Launch, MemoryImage) {
    let mut img = MemoryImage::new(1 << 16);
    let n = 16u32;
    let out = img.alloc(n * 4);

    let mut b = KernelBuilder::new("burst_loop", 16);
    b.mov(Operand::rud(6), Operand::imm_ud(0));
    b.do_();
    for k in 0..24u32 {
        b.mov(
            Operand::rf((20 + 2 * k) as u8),
            Operand::imm_f(0.5 + k as f32),
        );
    }
    b.add(Operand::rud(6), Operand::rud(6), Operand::imm_ud(1));
    b.cmp(
        CondOp::Lt,
        FlagReg::F0,
        Operand::rud(6),
        Operand::imm_ud(iters),
    );
    b.while_(Predicate::normal(FlagReg::F0));
    b.mad(
        Operand::rud(10),
        Operand::rud(1),
        Operand::imm_ud(4),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(10), Operand::rf(20));
    let program = b.finish().expect("valid kernel");
    let launch = Launch::new(program, n, 16).with_args(&[out]);
    (launch, img)
}

fn bench_burst_replay(c: &mut Criterion) {
    let (launch, img) = convergent_loop(400);
    let mut g = c.benchmark_group("coherence/burst_loop_400");
    g.sample_size(20);
    for (label, mode) in [("on", BurstMode::On), ("off", BurstMode::Off)] {
        let cfg = GpuConfig::paper_default().with_burst(mode);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut run_img = img.clone();
                simulate(black_box(&cfg), black_box(&launch), &mut run_img).expect("runs")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tally_scalar_vs_rle, bench_burst_replay);
criterion_main!(benches);
