//! Criterion benchmarks of the simulator and trace analyzer throughput:
//! one divergent kernel simulated under each compaction mode, and trace
//! analysis over the synthetic corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_trace::{analyze, corpus};
use iwc_workloads::{micro, rodinia};

fn bench_simulate_modes(c: &mut Criterion) {
    let built = micro::mask_pattern(0xAAAA, 1);
    let mut g = c.benchmark_group("simulate/maskpat_aaaa");
    g.sample_size(10);
    for mode in CompactionMode::ALL {
        let cfg = GpuConfig::paper_default().with_compaction(mode);
        g.bench_function(mode.label(), |b| {
            b.iter(|| built.run(black_box(&cfg)).expect("simulation completes"))
        });
    }
    g.finish();
}

fn bench_simulate_divergent_kernel(c: &mut Criterion) {
    let built = rodinia::particle_filter(1);
    let cfg = GpuConfig::paper_default();
    let mut g = c.benchmark_group("simulate/particle_filter");
    g.sample_size(10);
    g.bench_function("ivb", |b| {
        b.iter(|| built.run(black_box(&cfg)).expect("runs"))
    });
    g.finish();
}

fn bench_trace_analysis(c: &mut Criterion) {
    let trace = corpus()[0].generate(50_000);
    c.bench_function("trace/analyze_50k", |b| {
        b.iter(|| analyze(black_box(&trace)))
    });
    c.bench_function("trace/generate_10k", |b| {
        let p = &corpus()[0];
        b.iter(|| p.generate(black_box(10_000)))
    });
}

criterion_group!(
    benches,
    bench_simulate_modes,
    bench_simulate_divergent_kernel,
    bench_trace_analysis
);
criterion_main!(benches);
