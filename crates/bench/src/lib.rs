//! # iwc-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | Experiment | Paper artifact |
//! |---|---|
//! | `fig3` | SIMD efficiency of the workload suite, coherent/divergent split |
//! | `fig8` | Ivy Bridge divergence micro-benchmark, relative times |
//! | `fig9` | SIMD utilization breakdown of divergent workloads |
//! | `fig10` | EU execution-cycle reduction from BCC and SCC |
//! | `fig11` | Ray tracing: total vs EU cycle reduction, DC1/DC2, throughput |
//! | `fig12` | Rodinia: total vs EU cycle reduction, 128KB vs perfect L3 |
//! | `table2` | Nested-branch benefit of IVB/BCC/SCC |
//! | `table4` | Summary of max/average benefits |
//! | `rf_area` | Register-file organization study (§4.3 / Fig. 5) |
//! | `ablation_swizzle` | Distance-limited SCC crossbars (§4.3) |
//!
//! Every experiment lives in the [`experiments`] registry and runs through
//! the unified driver: `cargo run --release -p iwc-bench --bin iwc --
//! <name>` (`iwc list` enumerates the registry). The per-experiment
//! binaries (`fig10`, `table4`, …) remain as thin wrappers over the same
//! registry path. The `IWC_SCALE` environment variable scales problem
//! sizes (default 1) and `IWC_TRACE_LEN` the synthetic trace length.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod runner;

use iwc_compaction::EngineId;
use iwc_sim::{GpuConfig, SimResult};
use iwc_workloads::Built;

/// Emits `msg` to stderr once per `key` per process — the env knobs are
/// read once per cell, and a malformed value should not warn once per cell.
pub(crate) fn warn_once(key: &str, msg: &str) {
    use std::sync::Mutex;
    static WARNED: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let mut warned = WARNED.lock().expect("warn_once poisoned");
    if !warned.iter().any(|k| k == key) {
        warned.push(key.to_string());
        eprintln!("{msg}");
    }
}

/// Reads an environment knob, warning on stderr (instead of silently
/// defaulting) when the value is present but unparsable.
fn env_knob<T>(key: &str, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display,
{
    match std::env::var(key) {
        Ok(v) => match v.trim().parse() {
            Ok(x) => x,
            Err(_) => {
                warn_once(
                    key,
                    &format!("warning: ignoring malformed {key}={v:?}; using default {default}"),
                );
                default
            }
        },
        Err(_) => default,
    }
}

/// Problem-size scale from `IWC_SCALE` (default 1).
pub fn scale() -> u32 {
    env_knob("IWC_SCALE", 1)
}

/// Synthetic trace length from `IWC_TRACE_LEN` (default
/// [`iwc_trace::synth::DEFAULT_TRACE_LEN`]).
pub fn trace_len() -> usize {
    env_knob("IWC_TRACE_LEN", iwc_trace::synth::DEFAULT_TRACE_LEN)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

/// Renders a unicode bar of `frac` (clamped to [0, 1]) over `width` cells.
pub fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let cells = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < cells { '#' } else { '.' });
    }
    s
}

/// Prints the Table 3 configuration banner used by every harness binary.
pub fn print_config(cfg: &GpuConfig) {
    println!(
        "config: {} EUs x {} threads, ALU {}-wide, mode {}, L3 {}KB/{}-way/{} banks/{} cyc, \
         LLC {}MB/{} cyc, SLM {} cyc, DC {:.1} lines/cyc{}",
        cfg.eus,
        cfg.threads_per_eu,
        cfg.alu_width,
        cfg.compaction,
        cfg.mem.l3.size_bytes >> 10,
        cfg.mem.l3.ways,
        cfg.mem.l3.banks,
        cfg.mem.l3.latency,
        cfg.mem.llc.size_bytes >> 20,
        cfg.mem.llc.latency,
        cfg.mem.slm_latency,
        cfg.mem.dc_lines_per_cycle,
        if cfg.mem.perfect_l3 {
            ", perfect L3"
        } else {
            ""
        },
    );
}

/// The process-wide telemetry registry. Every simulation routed through
/// [`run_mode`] folds its [`SimResult::telemetry`] snapshot here (counters
/// add, histograms merge — addition commutes, so the aggregate is identical
/// whatever `IWC_THREADS` schedule the parallel harness picks), and
/// [`runner::Harness::finish`] embeds the final snapshot into
/// `results/bench_<name>.json`.
pub fn telemetry() -> &'static iwc_telemetry::Registry {
    static REGISTRY: std::sync::OnceLock<iwc_telemetry::Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(iwc_telemetry::Registry::new)
}

/// Runs `built` under the given compaction engine (paper-default GPU
/// otherwise), with the functional check applied, and folds the run's
/// telemetry snapshot into the process-wide [`telemetry`] registry. Accepts
/// a [`iwc_compaction::CompactionMode`] or any registry [`EngineId`].
///
/// # Panics
///
/// Panics when the simulation fails or the workload check rejects the
/// output — harness binaries should never silently report wrong-result
/// runs.
pub fn run_mode(built: &Built, engine: impl Into<EngineId>) -> SimResult {
    run_cfg(built, &GpuConfig::paper_default().with_compaction(engine))
}

/// Like [`run_mode`], but under an explicit configuration (DC-bandwidth and
/// perfect-L3 sweeps): functional check applied, telemetry absorbed into
/// the process-wide [`telemetry`] registry.
///
/// # Panics
///
/// Panics when the simulation fails or the workload check rejects the
/// output.
pub fn run_cfg(built: &Built, cfg: &GpuConfig) -> SimResult {
    let r = built
        .run_checked(cfg)
        .unwrap_or_else(|e| panic!("{}: {e}", built.name));
    telemetry().absorb(&r.telemetry);
    r
}

/// [`Built::run_modes`] with every result's telemetry folded into the
/// process-wide [`telemetry`] registry — the harness-side entry point for
/// multi-engine sweeps over one configuration.
///
/// # Panics
///
/// Panics when any simulation fails or a workload check rejects its output.
pub fn run_modes_cfg<M: Into<EngineId> + Copy>(
    built: &Built,
    cfg: &GpuConfig,
    modes: &[M],
) -> Vec<SimResult> {
    modes
        .iter()
        .map(|&m| run_cfg(built, &cfg.with_compaction(m)))
        .collect()
}

/// Relative total-cycle reduction of `opt` versus `base`.
pub fn cycle_reduction(base: &SimResult, opt: &SimResult) -> f64 {
    if base.cycles == 0 {
        0.0
    } else {
        1.0 - opt.cycles as f64 / base.cycles as f64
    }
}

/// Simple max/average accumulator for Table 4.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxAvg {
    /// Largest sample.
    pub max: f64,
    sum: f64,
    n: u32,
}

impl MaxAvg {
    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.max = self.max.max(v);
        self.sum += v;
        self.n += 1;
    }

    /// Mean of the samples (0 when empty).
    pub fn avg(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / f64::from(self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(pct(0.053), "  5.3%");
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(2.0, 3), "###");
        assert_eq!(bar(-1.0, 3), "...");
    }

    #[test]
    fn env_knob_falls_back_with_warning_on_malformed() {
        std::env::set_var("IWC_TEST_KNOB_OK", "7");
        assert_eq!(env_knob("IWC_TEST_KNOB_OK", 1u32), 7);
        std::env::set_var("IWC_TEST_KNOB_BAD", "abc");
        assert_eq!(env_knob("IWC_TEST_KNOB_BAD", 3u32), 3);
        assert_eq!(env_knob("IWC_TEST_KNOB_UNSET", 5u32), 5);
    }

    #[test]
    fn max_avg() {
        let mut m = MaxAvg::default();
        m.add(0.1);
        m.add(0.3);
        assert_eq!(m.max, 0.3);
        assert!((m.avg() - 0.2).abs() < 1e-12);
    }
}
