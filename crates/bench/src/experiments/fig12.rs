//! Fig. 12: Rodinia kernels — reduction in total execution cycles with the
//! 128 KB L3 and with a perfect (infinite) L3, compared with the EU-cycle
//! reduction from BCC/SCC.
//!
//! The paper's finding: memory-latency-bound kernels (BFS) see little
//! wall-clock benefit even from a perfect L3; compute-bound kernels realize
//! most of the EU-cycle gain.

use super::Outcome;
use crate::runner::parallel_map;
use crate::{cycle_reduction, pct, print_config, scale};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_workloads::{rodinia, Built};

fn rodinia_set(scale: u32) -> Vec<Built> {
    vec![
        rodinia::bfs(scale),
        rodinia::hotspot(scale),
        rodinia::lavamd(scale),
        rodinia::needleman_wunsch(scale),
        rodinia::particle_filter(scale),
    ]
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 12: Rodinia — total vs EU cycle reduction, 128KB vs perfect L3 ==\n");
    print_config(&GpuConfig::paper_default());
    println!(
        "\n{:<16} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "kernel", "bccTot", "sccTot", "bccTotPL3", "sccTotPL3", "bccEU", "sccEU"
    );
    let builts = rodinia_set(scale());
    let cells = builts.len();
    let modes = [
        CompactionMode::IvyBridge,
        CompactionMode::Bcc,
        CompactionMode::Scc,
    ];
    let rows = parallel_map(&builts, |built| {
        let sweep = |perfect: bool| {
            crate::run_modes_cfg(
                built,
                &GpuConfig::paper_default().with_perfect_l3(perfect),
                &modes,
            )
        };
        let real = sweep(false);
        let perf = sweep(true);
        let t = real[0].compute_tally();
        format!(
            "{:<16} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
            built.name,
            pct(cycle_reduction(&real[0], &real[1])),
            pct(cycle_reduction(&real[0], &real[2])),
            pct(cycle_reduction(&perf[0], &perf[1])),
            pct(cycle_reduction(&perf[0], &perf[2])),
            pct(t.reduction_vs_ivb(CompactionMode::Bcc)),
            pct(t.reduction_vs_ivb(CompactionMode::Scc)),
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\npaper: EU-cycle savings average 18% (BCC) / 21% (SCC) for this set, but \
         total-time gains are smaller; BFS is memory-bound and gains little even \
         with a perfect L3"
    );
    Outcome::cells(cells)
}
