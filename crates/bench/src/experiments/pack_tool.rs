//! `pack` / `unpack` — corpus pack (`.iwcc`) round-trip tooling.
//!
//! ```console
//! iwc pack                              # expanded corpus -> default pack
//! iwc pack <out.iwcc> [count] [len]     # expanded corpus -> custom pack
//! iwc pack info <pack.iwcc>             # index listing + pack hash
//! iwc pack files <out.iwcc> <in.iwct>…  # pack existing IWCT trace files
//! iwc unpack <pack.iwcc> <out-dir> [name]  # pack -> .iwct files
//! ```
//!
//! Generation streams every profile straight into the pack writer
//! (`Profile::source` → `PackWriter::add_source`), so packing the
//! ~600-trace expanded corpus never materializes a single whole trace.
//! The pack is a pure function of (count, len): re-running `iwc pack`
//! reproduces it byte-for-byte, which is why the default pack is
//! regenerable rather than checked in. `unpack` writes each trace back
//! out in the single-trace `IWCT` encoding the rest of the tooling
//! reads, and `pack files` closes the round trip.

use super::Outcome;
use iwc_trace::pack::{CorpusPack, PackWriter};
use iwc_trace::synth::DEFAULT_EXPANDED_TRACES;
use iwc_trace::{expanded_corpus, for_each_run, store, Trace, TraceRecord};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Mask-coherence profile of one record stream (or a whole pack): how
/// repetitive the trace is, and what RLE would buy. Folded from runs, so
/// computing it never materializes a trace.
#[derive(Default)]
struct Coherence {
    records: u64,
    runs: u64,
    masks: BTreeSet<(u32, u8)>,
    max_run: u64,
    /// Payload bytes the run-length encoding would take, mirroring the
    /// writer's `emit_run` (6 B for a lone record, 10 B per counted item,
    /// runs past `u32::MAX` split).
    rle_bytes: u64,
}

impl Coherence {
    fn add_run(&mut self, rec: TraceRecord, mut n: u64) {
        self.records += n;
        self.runs += 1;
        self.masks.insert((rec.bits, rec.width));
        self.max_run = self.max_run.max(n);
        while n > 0 {
            if n == 1 {
                self.rle_bytes += 6;
                break;
            }
            self.rle_bytes += 10;
            n -= n.min(u64::from(u32::MAX));
        }
    }

    fn merge(&mut self, other: &Coherence) {
        self.records += other.records;
        self.runs += other.runs;
        self.masks.extend(other.masks.iter().copied());
        self.max_run = self.max_run.max(other.max_run);
        self.rle_bytes += other.rle_bytes;
    }

    fn mean_run(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.records as f64 / self.runs as f64
        }
    }
}

fn pack_usage() -> Outcome {
    eprintln!(
        "usage:\n  pack [rle] [out.iwcc] [count] [len]\n  \
         pack info <pack.iwcc>\n  pack files <out.iwcc> <in.iwct>..."
    );
    Outcome::fail()
}

/// Writes the deterministic expanded corpus into a pack at `out`,
/// run-length encoding the payloads when `rle` is set.
pub(crate) fn generate(out: &Path, count: usize, len: usize, rle: bool) -> Result<usize, String> {
    let profiles = expanded_corpus(count);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
    }
    let file = File::create(out).map_err(|e| e.to_string())?;
    let mut w = PackWriter::new(BufWriter::new(file)).map_err(|e| e.to_string())?;
    w.set_rle(rle);
    for p in &profiles {
        w.add_source(&mut p.source(len))
            .map_err(|e| e.to_string())?;
    }
    w.finish().map_err(|e| e.to_string())?;
    Ok(profiles.len())
}

pub(crate) fn run_pack(args: &[String]) -> Outcome {
    match args.first().map(String::as_str) {
        Some("info") => {
            let Some(path) = args.get(1) else {
                return pack_usage();
            };
            let mut pack = match CorpusPack::open_path(Path::new(path)) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("open failed: {e}");
                    return Outcome::fail();
                }
            };
            println!("pack {:?}: {} traces", path, pack.len());
            println!(
                "  {:<32} {:>9}  {:>5}  {:>9}  {:>8}  {:>10}  hash",
                "name", "records", "masks", "mean-run", "max-run", "rle-bytes"
            );
            let entries = pack.entries().to_vec();
            let mut agg = Coherence::default();
            for (i, e) in entries.iter().enumerate() {
                let mut c = Coherence::default();
                let streamed = pack
                    .stream(i)
                    .and_then(|mut src| for_each_run(&mut src, |rec, n| c.add_run(rec, n)));
                if let Err(err) = streamed {
                    eprintln!("stream {:?} failed: {err}", e.name);
                    return Outcome::fail();
                }
                println!(
                    "  {:<32} {:>9}  {:>5}  {:>9.1}  {:>8}  {:>10}  {:#018x}{}",
                    e.name,
                    c.records,
                    c.masks.len(),
                    c.mean_run(),
                    c.max_run,
                    c.rle_bytes,
                    e.content_hash,
                    if e.is_rle() { "  [rle]" } else { "" },
                );
                agg.merge(&c);
            }
            println!(
                "aggregate: {} records in {} runs, {} distinct masks, \
                 mean run {:.1}, max run {}, rle {} B vs plain {} B ({:.2}x)",
                agg.records,
                agg.runs,
                agg.masks.len(),
                agg.mean_run(),
                agg.max_run,
                agg.rle_bytes,
                agg.records * 6,
                if agg.rle_bytes == 0 {
                    1.0
                } else {
                    (agg.records * 6) as f64 / agg.rle_bytes as f64
                },
            );
            println!("pack hash {:#018x}", pack.content_hash());
            Outcome::done()
        }
        Some("files") if args.len() >= 3 => {
            let out = PathBuf::from(&args[1]);
            let mut traces = Vec::new();
            for p in &args[2..] {
                match File::open(p)
                    .map_err(|e| e.to_string())
                    .and_then(|f| Trace::read_from(BufReader::new(f)).map_err(|e| e.to_string()))
                {
                    Ok(t) => traces.push(t),
                    Err(e) => {
                        eprintln!("read {p} failed: {e}");
                        return Outcome::fail();
                    }
                }
            }
            match iwc_trace::pack::write_pack_file(&out, &traces) {
                Ok(entries) => {
                    let records: u64 = entries.iter().map(|e| e.records).sum();
                    println!(
                        "packed {} traces ({records} records) into {}",
                        entries.len(),
                        out.display()
                    );
                    Outcome::cells(entries.len())
                }
                Err(e) => {
                    eprintln!("pack failed: {e}");
                    Outcome::fail()
                }
            }
        }
        Some("files") => pack_usage(),
        _ => {
            // Default mode: generate the expanded corpus. The optional
            // positionals are [rle] [out] [count] [len].
            let rle = args.iter().any(|a| a == "rle");
            let rest: Vec<&String> = args.iter().filter(|a| *a != "rle").collect();
            let out = rest
                .first()
                .filter(|a| a.parse::<usize>().is_err())
                .map_or_else(store::default_pack_path, |a| PathBuf::from(a.as_str()));
            // When the first arg was numeric it is the count.
            let numerics: Vec<usize> = rest.iter().filter_map(|a| a.parse().ok()).collect();
            let count = numerics.first().copied().unwrap_or(DEFAULT_EXPANDED_TRACES);
            let len = numerics.get(1).copied().unwrap_or_else(crate::trace_len);
            match generate(&out, count, len, rle) {
                Ok(n) => {
                    let pack = match CorpusPack::open_path(&out) {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("re-open failed: {e}");
                            return Outcome::fail();
                        }
                    };
                    println!("packed {n} traces x {len} records into {}", out.display());
                    println!("pack hash {:#018x}", pack.content_hash());
                    Outcome::cells(n)
                }
                Err(e) => {
                    eprintln!("pack failed: {e}");
                    Outcome::fail()
                }
            }
        }
    }
}

/// Filesystem-safe file stem for a trace name.
fn safe_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == '/' || c == '\\' || c == ':' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

pub(crate) fn run_unpack(args: &[String]) -> Outcome {
    let (Some(pack_path), Some(out_dir)) = (args.first(), args.get(1)) else {
        eprintln!("usage:\n  unpack <pack.iwcc> <out-dir> [name]");
        return Outcome::fail();
    };
    let only = args.get(2);
    let mut pack = match CorpusPack::open_path(Path::new(pack_path)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("open failed: {e}");
            return Outcome::fail();
        }
    };
    let out_dir = PathBuf::from(out_dir);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return Outcome::fail();
    }
    let indices: Vec<usize> = match only {
        Some(name) => match pack.find(name) {
            Some(i) => vec![i],
            None => {
                eprintln!("no trace named {name:?} in {pack_path}");
                return Outcome::fail();
            }
        },
        None => (0..pack.len()).collect(),
    };
    let mut written = 0usize;
    for i in indices {
        let trace = match pack.read_trace(i) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("read trace {i} failed: {e}");
                return Outcome::fail();
            }
        };
        let path = out_dir.join(format!("{}.iwct", safe_stem(&trace.name)));
        match File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| trace.write_to(BufWriter::new(f)).map_err(|e| e.to_string()))
        {
            Ok(()) => written += 1,
            Err(e) => {
                eprintln!("write {} failed: {e}", path.display());
                return Outcome::fail();
            }
        }
    }
    println!("unpacked {written} traces into {}", out_dir.display());
    Outcome::cells(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("iwc-pack-tool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("t.iwcc");

        // Generate a small pack, unpack it, re-pack the files, and check
        // the pack hash survives the full round trip.
        generate(&pack_path, 5, 400, false).unwrap();
        let hash = CorpusPack::open_path(&pack_path).unwrap().content_hash();

        let out = dir.join("unpacked");
        let st = run_unpack(&[pack_path.display().to_string(), out.display().to_string()]);
        assert_eq!(st.code, 0);

        let mut iwct: Vec<String> = std::fs::read_dir(&out)
            .unwrap()
            .map(|e| e.unwrap().path().display().to_string())
            .collect();
        iwct.sort();
        assert_eq!(iwct.len(), 22, "expander keeps all base profiles");

        // Repack in original order (read_dir order is lexicographic after
        // the sort, so map names back through the original index).
        let mut pack = CorpusPack::open_path(&pack_path).unwrap();
        let ordered: Vec<Trace> = (0..pack.len())
            .map(|i| pack.read_trace(i).unwrap())
            .collect();
        let repacked = dir.join("re.iwcc");
        iwc_trace::pack::write_pack_file(&repacked, &ordered).unwrap();
        assert_eq!(
            CorpusPack::open_path(&repacked).unwrap().content_hash(),
            hash,
            "round trip preserves the pack hash"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_is_reproducible() {
        let dir = std::env::temp_dir().join(format!("iwc-pack-repro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = dir.join("a.iwcc");
        let b = dir.join("b.iwcc");
        generate(&a, 3, 300, false).unwrap();
        generate(&b, 3, 300, false).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coherence_folds_runs_like_the_rle_writer() {
        use iwc_isa::{DataType, ExecMask};
        let full = TraceRecord::new(ExecMask::all(8), DataType::F);
        let half = TraceRecord::new(ExecMask::new(0x0f, 8), DataType::F);
        let mut c = Coherence::default();
        c.add_run(full, 1000);
        c.add_run(half, 1);
        c.add_run(full, 3);
        assert_eq!(c.records, 1004);
        assert_eq!(c.runs, 3);
        assert_eq!(c.masks.len(), 2, "same mask re-seen is not re-counted");
        assert_eq!(c.max_run, 1000);
        assert_eq!(c.rle_bytes, 10 + 6 + 10);
        assert!((c.mean_run() - 1004.0 / 3.0).abs() < 1e-9);

        // A run past u32::MAX splits into counted items, like emit_run.
        let mut big = Coherence::default();
        big.add_run(full, u64::from(u32::MAX) + 2);
        assert_eq!(big.rle_bytes, 20);
        assert_eq!(Coherence::default().mean_run(), 0.0);
    }

    #[test]
    fn pack_info_reports_coherence() {
        let dir = std::env::temp_dir().join(format!("iwc-pack-info-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pack_path = dir.join("t.iwcc");
        generate(&pack_path, 3, 200, true).unwrap();
        let st = run_pack(&["info".to_string(), pack_path.display().to_string()]);
        assert_eq!(st.code, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn safe_stem_strips_separators() {
        assert_eq!(safe_stem("a/b\\c:d"), "a_b_c_d");
        assert_eq!(safe_stem("LuxMark-sky@v03"), "LuxMark-sky@v03");
    }
}
