//! `pack` / `unpack` — corpus pack (`.iwcc`) round-trip tooling.
//!
//! ```console
//! iwc pack                              # expanded corpus -> default pack
//! iwc pack <out.iwcc> [count] [len]     # expanded corpus -> custom pack
//! iwc pack info <pack.iwcc>             # index listing + pack hash
//! iwc pack files <out.iwcc> <in.iwct>…  # pack existing IWCT trace files
//! iwc unpack <pack.iwcc> <out-dir> [name]  # pack -> .iwct files
//! ```
//!
//! Generation streams every profile straight into the pack writer
//! (`Profile::source` → `PackWriter::add_source`), so packing the
//! ~600-trace expanded corpus never materializes a single whole trace.
//! The pack is a pure function of (count, len): re-running `iwc pack`
//! reproduces it byte-for-byte, which is why the default pack is
//! regenerable rather than checked in. `unpack` writes each trace back
//! out in the single-trace `IWCT` encoding the rest of the tooling
//! reads, and `pack files` closes the round trip.

use super::Outcome;
use iwc_trace::pack::{CorpusPack, PackWriter};
use iwc_trace::synth::DEFAULT_EXPANDED_TRACES;
use iwc_trace::{expanded_corpus, store, Trace};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

fn pack_usage() -> Outcome {
    eprintln!(
        "usage:\n  pack [out.iwcc] [count] [len]\n  \
         pack info <pack.iwcc>\n  pack files <out.iwcc> <in.iwct>..."
    );
    Outcome::fail()
}

/// Writes the deterministic expanded corpus into a pack at `out`.
pub(crate) fn generate(out: &Path, count: usize, len: usize) -> Result<usize, String> {
    let profiles = expanded_corpus(count);
    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
    }
    let file = File::create(out).map_err(|e| e.to_string())?;
    let mut w = PackWriter::new(BufWriter::new(file)).map_err(|e| e.to_string())?;
    for p in &profiles {
        w.add_source(&mut p.source(len))
            .map_err(|e| e.to_string())?;
    }
    w.finish().map_err(|e| e.to_string())?;
    Ok(profiles.len())
}

pub(crate) fn run_pack(args: &[String]) -> Outcome {
    match args.first().map(String::as_str) {
        Some("info") => {
            let Some(path) = args.get(1) else {
                return pack_usage();
            };
            let pack = match CorpusPack::open_path(Path::new(path)) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("open failed: {e}");
                    return Outcome::fail();
                }
            };
            println!("pack {:?}: {} traces", path, pack.len());
            for e in pack.entries() {
                println!(
                    "  {:<32} {:>9} records  {:#018x}",
                    e.name, e.records, e.content_hash
                );
            }
            println!("pack hash {:#018x}", pack.content_hash());
            Outcome::done()
        }
        Some("files") if args.len() >= 3 => {
            let out = PathBuf::from(&args[1]);
            let mut traces = Vec::new();
            for p in &args[2..] {
                match File::open(p)
                    .map_err(|e| e.to_string())
                    .and_then(|f| Trace::read_from(BufReader::new(f)).map_err(|e| e.to_string()))
                {
                    Ok(t) => traces.push(t),
                    Err(e) => {
                        eprintln!("read {p} failed: {e}");
                        return Outcome::fail();
                    }
                }
            }
            match iwc_trace::pack::write_pack_file(&out, &traces) {
                Ok(entries) => {
                    let records: u64 = entries.iter().map(|e| e.records).sum();
                    println!(
                        "packed {} traces ({records} records) into {}",
                        entries.len(),
                        out.display()
                    );
                    Outcome::cells(entries.len())
                }
                Err(e) => {
                    eprintln!("pack failed: {e}");
                    Outcome::fail()
                }
            }
        }
        Some("files") => pack_usage(),
        arg => {
            // Default mode: generate the expanded corpus. The optional
            // positionals are [out] [count] [len].
            let out = arg
                .filter(|a| a.parse::<usize>().is_err())
                .map_or_else(store::default_pack_path, PathBuf::from);
            // When the first arg was numeric it is the count.
            let numerics: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
            let count = numerics.first().copied().unwrap_or(DEFAULT_EXPANDED_TRACES);
            let len = numerics.get(1).copied().unwrap_or_else(crate::trace_len);
            match generate(&out, count, len) {
                Ok(n) => {
                    let pack = match CorpusPack::open_path(&out) {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("re-open failed: {e}");
                            return Outcome::fail();
                        }
                    };
                    println!("packed {n} traces x {len} records into {}", out.display());
                    println!("pack hash {:#018x}", pack.content_hash());
                    Outcome::cells(n)
                }
                Err(e) => {
                    eprintln!("pack failed: {e}");
                    Outcome::fail()
                }
            }
        }
    }
}

/// Filesystem-safe file stem for a trace name.
fn safe_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == '/' || c == '\\' || c == ':' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

pub(crate) fn run_unpack(args: &[String]) -> Outcome {
    let (Some(pack_path), Some(out_dir)) = (args.first(), args.get(1)) else {
        eprintln!("usage:\n  unpack <pack.iwcc> <out-dir> [name]");
        return Outcome::fail();
    };
    let only = args.get(2);
    let mut pack = match CorpusPack::open_path(Path::new(pack_path)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("open failed: {e}");
            return Outcome::fail();
        }
    };
    let out_dir = PathBuf::from(out_dir);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return Outcome::fail();
    }
    let indices: Vec<usize> = match only {
        Some(name) => match pack.find(name) {
            Some(i) => vec![i],
            None => {
                eprintln!("no trace named {name:?} in {pack_path}");
                return Outcome::fail();
            }
        },
        None => (0..pack.len()).collect(),
    };
    let mut written = 0usize;
    for i in indices {
        let trace = match pack.read_trace(i) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("read trace {i} failed: {e}");
                return Outcome::fail();
            }
        };
        let path = out_dir.join(format!("{}.iwct", safe_stem(&trace.name)));
        match File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| trace.write_to(BufWriter::new(f)).map_err(|e| e.to_string()))
        {
            Ok(()) => written += 1,
            Err(e) => {
                eprintln!("write {} failed: {e}", path.display());
                return Outcome::fail();
            }
        }
    }
    println!("unpacked {written} traces into {}", out_dir.display());
    Outcome::cells(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("iwc-pack-tool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("t.iwcc");

        // Generate a small pack, unpack it, re-pack the files, and check
        // the pack hash survives the full round trip.
        generate(&pack_path, 5, 400).unwrap();
        let hash = CorpusPack::open_path(&pack_path).unwrap().content_hash();

        let out = dir.join("unpacked");
        let st = run_unpack(&[pack_path.display().to_string(), out.display().to_string()]);
        assert_eq!(st.code, 0);

        let mut iwct: Vec<String> = std::fs::read_dir(&out)
            .unwrap()
            .map(|e| e.unwrap().path().display().to_string())
            .collect();
        iwct.sort();
        assert_eq!(iwct.len(), 22, "expander keeps all base profiles");

        // Repack in original order (read_dir order is lexicographic after
        // the sort, so map names back through the original index).
        let mut pack = CorpusPack::open_path(&pack_path).unwrap();
        let ordered: Vec<Trace> = (0..pack.len())
            .map(|i| pack.read_trace(i).unwrap())
            .collect();
        let repacked = dir.join("re.iwcc");
        iwc_trace::pack::write_pack_file(&repacked, &ordered).unwrap();
        assert_eq!(
            CorpusPack::open_path(&repacked).unwrap().content_hash(),
            hash,
            "round trip preserves the pack hash"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_is_reproducible() {
        let dir = std::env::temp_dir().join(format!("iwc-pack-repro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = dir.join("a.iwcc");
        let b = dir.join("b.iwcc");
        generate(&a, 3, 300).unwrap();
        generate(&b, 3, 300).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn safe_stem_strips_separators() {
        assert_eq!(safe_stem("a/b\\c:d"), "a_b_c_d");
        assert_eq!(safe_stem("LuxMark-sky@v03"), "LuxMark-sky@v03");
    }
}
