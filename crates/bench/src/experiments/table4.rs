//! Table 4: summary of BCC and SCC benefits for divergent workloads —
//! max/average EU-cycle reductions (simulated and trace-based) and
//! execution-time reductions under DC1 and DC2.

use super::Outcome;
use crate::runner::{self, parallel_map};
use crate::{cycle_reduction, pct, scale, trace_len, MaxAvg};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_trace::{analyze_corpus, corpus};
use iwc_workloads::{catalog, Category};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Table 4: summary of BCC and SCC benefits (divergent workloads) ==\n");
    let entries: Vec<_> = catalog()
        .into_iter()
        .filter(|e| e.category == Category::Divergent)
        .collect();
    let profiles = corpus();
    let cells = entries.len() + profiles.len();

    // One cell per divergent workload: [sim_bcc, sim_scc, dc1_bcc, dc1_scc,
    // dc2_bcc, dc2_scc] reductions, aggregated in catalog order below.
    let sim_cells = parallel_map(&entries, |entry| {
        let built = (entry.build)(scale());
        let run = |mode: CompactionMode, dc: f64| {
            let cfg = GpuConfig::paper_default()
                .with_compaction(mode)
                .with_dc_bandwidth(dc);
            crate::run_cfg(&built, &cfg)
        };
        let base1 = run(CompactionMode::IvyBridge, 1.0);
        let base2 = run(CompactionMode::IvyBridge, 2.0);
        let t = base1.compute_tally();
        [
            t.reduction_vs_ivb(CompactionMode::Bcc),
            t.reduction_vs_ivb(CompactionMode::Scc),
            cycle_reduction(&base1, &run(CompactionMode::Bcc, 1.0)),
            cycle_reduction(&base1, &run(CompactionMode::Scc, 1.0)),
            cycle_reduction(&base2, &run(CompactionMode::Bcc, 2.0)),
            cycle_reduction(&base2, &run(CompactionMode::Scc, 2.0)),
        ]
    });

    let (mut sim_bcc, mut sim_scc) = (MaxAvg::default(), MaxAvg::default());
    let (mut tr_bcc, mut tr_scc) = (MaxAvg::default(), MaxAvg::default());
    let (mut dc1_bcc, mut dc1_scc) = (MaxAvg::default(), MaxAvg::default());
    let (mut dc2_bcc, mut dc2_scc) = (MaxAvg::default(), MaxAvg::default());
    for cell in &sim_cells {
        sim_bcc.add(cell[0]);
        sim_scc.add(cell[1]);
        dc1_bcc.add(cell[2]);
        dc1_scc.add(cell[3]);
        dc2_bcc.add(cell[4]);
        dc2_scc.add(cell[5]);
    }
    for report in analyze_corpus(&profiles, trace_len(), runner::threads()) {
        tr_bcc.add(report.reduction(CompactionMode::Bcc));
        tr_scc.add(report.reduction(CompactionMode::Scc));
    }

    println!(
        "{:<38} {:>9} {:>9} {:>9} {:>9}",
        "divergent workloads", "BCC max", "BCC avg", "SCC max", "SCC avg"
    );
    let row = |label: &str, bcc: &MaxAvg, scc: &MaxAvg| {
        println!(
            "{label:<38} {:>9} {:>9} {:>9} {:>9}",
            pct(bcc.max),
            pct(bcc.avg()),
            pct(scc.max),
            pct(scc.avg())
        );
    };
    row("GPGenSim (EU cycles)", &sim_bcc, &sim_scc);
    row("Traces (EU cycles)", &tr_bcc, &tr_scc);
    row("GPGenSim execution time (DC1)", &dc1_bcc, &dc1_scc);
    row("GPGenSim execution time (DC2)", &dc2_bcc, &dc2_scc);

    println!("\npaper Table 4:");
    println!("  GPGenSim EU cycles          bcc 36%/18%  scc 38%/24%");
    println!("  Traces EU cycles            bcc 31%/12%  scc 42%/18%");
    println!("  Execution time (DC1)        bcc 21%/ 5%  scc 21%/ 7%");
    println!("  Execution time (DC2)        bcc 28%/12%  scc 36%/18%");
    Outcome::cells(cells)
}
