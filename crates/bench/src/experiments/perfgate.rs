//! `iwc perfgate` — regression sentinel over the checked-in benchmark
//! trajectories.
//!
//! Every `results/BENCH_*.json` report keeps a `"runs"` list — one
//! `{ threads, wall_ms, cells }` line per recorded sweep, carried forward
//! across regenerations — so the repo already stores a per-machine perf
//! trajectory. This gate turns that trajectory into a pass/fail signal:
//! for each report it picks the *current* run (the largest sweep recorded
//! at the report's own thread count), derives its rate in cells per
//! second, takes the **median of the remaining runs** (up to the last
//! [`BASELINE_POOL`]) as the baseline, and fails when the current rate
//! falls below `baseline × (1 − tolerance)`.
//!
//! The median-of-pool baseline makes the gate robust to a single noisy
//! historical run, and the tolerance band (default ±20%,
//! `IWC_PERFGATE_TOL` override, malformed values warn once and fall back)
//! absorbs machine-to-machine variance — CI widens it. A report with no
//! history yet ("no baseline") passes: the gate only ever compares a
//! trajectory against itself.
//!
//! The verdict table is ranked worst-first (smallest current/baseline
//! ratio at the top) so the headline regression is the first line of the
//! report. Serve latency quantiles (`p50_hi`/`p99_hi`) are surfaced
//! informationally — they are single snapshots, not trajectories, so they
//! are reported but not gated.

use super::Outcome;
use crate::runner::{parse_run_line, results_dir, RunRecord};

/// Default noise band: fail only when the current rate is more than 20%
/// below the baseline median.
pub(crate) const DEFAULT_TOL: f64 = 0.20;

/// Baseline pool size: the median is taken over at most this many of the
/// most recent non-current runs.
const BASELINE_POOL: usize = 8;

/// The gated reports, in presentation order.
const REPORTS: [&str; 3] = ["BENCH_sim.json", "BENCH_corpus.json", "BENCH_serve.json"];

/// One report's verdict: the current rate against its baseline median.
#[derive(Clone, Debug)]
struct Verdict {
    report: String,
    /// The run being judged.
    current: RunRecord,
    /// Cells per second of the current run.
    rate: f64,
    /// Median rate of the baseline pool, when any history exists.
    baseline: Option<f64>,
    /// Runs the baseline median was taken over.
    pool: usize,
    tol: f64,
}

impl Verdict {
    /// The lowest rate that still passes.
    fn floor(&self) -> Option<f64> {
        self.baseline.map(|b| b * (1.0 - self.tol))
    }

    /// `current / baseline` — the ranking key (worst first).
    fn ratio(&self) -> f64 {
        self.baseline.map_or(f64::INFINITY, |b| self.rate / b)
    }

    fn pass(&self) -> bool {
        self.floor().is_none_or(|f| self.rate >= f)
    }
}

/// Pure parse of an `IWC_PERFGATE_TOL` value: a fraction strictly between
/// 0 and 1 (e.g. `0.35` widens the band to ±35%).
pub(crate) fn parse_tol(raw: &str) -> Result<f64, String> {
    match raw.trim().parse::<f64>() {
        Ok(t) if t > 0.0 && t < 1.0 => Ok(t),
        _ => Err(format!("want a fraction in (0, 1), got {raw:?}")),
    }
}

/// The effective tolerance: `IWC_PERFGATE_TOL` when set and valid,
/// otherwise [`DEFAULT_TOL`] (malformed values warn once, never fail).
fn tolerance() -> f64 {
    match std::env::var("IWC_PERFGATE_TOL") {
        Ok(raw) => parse_tol(&raw).unwrap_or_else(|why| {
            crate::warn_once(
                "IWC_PERFGATE_TOL",
                &format!(
                    "warning: ignoring malformed IWC_PERFGATE_TOL ({why}); using {DEFAULT_TOL}"
                ),
            );
            DEFAULT_TOL
        }),
        Err(_) => DEFAULT_TOL,
    }
}

/// Cells per second of one recorded run; `None` for degenerate records.
fn rate(r: &RunRecord) -> Option<f64> {
    #[allow(clippy::cast_precision_loss)]
    (r.wall_ms > 0.0 && r.cells > 0).then(|| r.cells as f64 / (r.wall_ms / 1e3))
}

/// The report's own thread count (`"threads": N` in the header, distinct
/// from the per-run lines, which `parse_run_line` handles).
fn header_threads(text: &str) -> Option<usize> {
    text.lines().find_map(|line| {
        let rest = line.trim().strip_prefix("\"threads\":")?;
        rest.trim().trim_end_matches(',').parse().ok()
    })
}

/// Median of a non-empty slice (the even case averages the middle pair).
fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    })
}

/// Judges one report text: current = the largest sweep at the header
/// thread count (falling back to the last run line), baseline = median of
/// the remaining runs' rates, pool capped at [`BASELINE_POOL`].
fn evaluate(report: &str, text: &str, tol: f64) -> Option<Verdict> {
    let runs: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
    let header = header_threads(text);
    let current = runs
        .iter()
        .filter(|r| header.is_none_or(|t| r.threads == t))
        .max_by_key(|r| r.cells)
        .or(runs.last())
        .copied()?;
    let pool: Vec<f64> = runs
        .iter()
        .filter(|r| **r != current)
        .filter_map(rate)
        .collect();
    let pool = &pool[pool.len().saturating_sub(BASELINE_POOL)..];
    Some(Verdict {
        report: report.to_string(),
        current,
        rate: rate(&current)?,
        baseline: median(pool),
        pool: pool.len(),
        tol,
    })
}

/// Worst-first ranking: smallest current/baseline ratio on top, reports
/// without a baseline at the bottom (alphabetical within ties).
fn rank(verdicts: &mut [Verdict]) {
    verdicts.sort_by(|a, b| {
        f64::total_cmp(&a.ratio(), &b.ratio()).then_with(|| a.report.cmp(&b.report))
    });
}

/// First number after `"key":` anywhere in the text — for the
/// informational (ungated) serve latency fields.
fn number_field(text: &str, key: &str) -> Option<f64> {
    let tail = &text[text.find(&format!("\"{key}\""))?..];
    let tail = &tail[tail.find(':')? + 1..];
    let end = tail.find([',', '}', '\n'])?;
    tail[..end].trim().parse().ok()
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    let tol = tolerance();
    println!(
        "== Perf regression gate: BENCH_*.json run trajectories, tolerance -{:.0}% ==\n",
        tol * 100.0
    );

    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut serve_text = String::new();
    for report in REPORTS {
        let path = results_dir().join(report);
        let Ok(text) = std::fs::read_to_string(&path) else {
            println!("{report:<18} missing (skipped)");
            continue;
        };
        if report == "BENCH_serve.json" {
            serve_text = text.clone();
        }
        match evaluate(report, &text, tol) {
            Some(v) => verdicts.push(v),
            None => println!("{report:<18} no runs recorded (skipped)"),
        }
    }
    rank(&mut verdicts);

    let mut failures = 0;
    for v in &verdicts {
        match (v.baseline, v.floor()) {
            (Some(b), Some(floor)) => {
                let mark = if v.pass() { "ok" } else { "FAIL" };
                failures += usize::from(!v.pass());
                println!(
                    "{:<18} {:>9.1} cells/s ({} thread(s), {} cells)  \
                     baseline {:>9.1} over {} run(s), floor {:>9.1}  [{mark}]",
                    v.report, v.rate, v.current.threads, v.current.cells, b, v.pool, floor
                );
            }
            _ => println!(
                "{:<18} {:>9.1} cells/s ({} thread(s), {} cells)  no baseline yet  [ok]",
                v.report, v.rate, v.current.threads, v.current.cells
            ),
        }
    }

    // Serve latency quantiles: one snapshot per regeneration, so they are
    // surfaced for the reader but never gated.
    if let (Some(p50), Some(p99)) = (
        number_field(&serve_text, "p50_hi"),
        number_field(&serve_text, "p99_hi"),
    ) {
        println!("\nserve latency (informational): p50 <= {p50:.0} us, p99 <= {p99:.0} us");
    }

    if failures > 0 {
        eprintln!(
            "[perfgate] FAIL: {failures} of {} gated report(s) regressed beyond -{:.0}% \
             (override the band with IWC_PERFGATE_TOL)",
            verdicts.len(),
            tol * 100.0
        );
        return Outcome::fail();
    }
    println!(
        "\nperfgate: {} report(s) gated, 0 regressions",
        verdicts.len()
    );
    Outcome::done()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tol_parses_fractions_and_rejects_nonsense() {
        assert_eq!(parse_tol("0.35"), Ok(0.35));
        assert_eq!(parse_tol(" 0.05 "), Ok(0.05));
        assert!(parse_tol("0").is_err(), "zero band gates on noise");
        assert!(parse_tol("1").is_err(), "full band gates nothing");
        assert!(parse_tol("1.5").is_err());
        assert!(parse_tol("-0.2").is_err());
        assert!(parse_tol("lots").is_err());
        assert!(parse_tol("NaN").is_err());
    }

    #[test]
    fn median_of_odd_even_and_empty() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    const REPORT: &str = r#"{
  "name": "sim",
  "schema": 2,
  "threads": 1,
  "runs": [
    { "threads": 1, "wall_ms": 10000.00, "cells": 400 },
    { "threads": 4, "wall_ms": 2000.00, "cells": 600 },
    { "threads": 1, "wall_ms": 7500.00, "cells": 600 }
  ]
}"#;

    #[test]
    fn evaluate_picks_current_by_header_threads_and_cells() {
        let v = evaluate("BENCH_sim.json", REPORT, DEFAULT_TOL).expect("report gates");
        // Current = the 1-thread 600-cell run (header says threads: 1),
        // not the faster 4-thread sweep.
        assert_eq!(v.current.threads, 1);
        assert_eq!(v.current.cells, 600);
        assert!((v.rate - 80.0).abs() < 1e-9, "{}", v.rate);
        // Pool = the other two runs: 40 and 300 cells/s, median 170.
        assert_eq!(v.pool, 2);
        assert_eq!(v.baseline, Some(170.0));
        // 80 < 170 * 0.8 = 136: a regression at the default band.
        assert!(!v.pass());
        assert!(v.floor().unwrap() > v.rate);
        // A wide enough band passes the same trajectory.
        let wide = evaluate("BENCH_sim.json", REPORT, 0.6).unwrap();
        assert!(wide.pass());
    }

    #[test]
    fn single_run_reports_have_no_baseline_and_pass() {
        let text = "{\n  \"threads\": 2,\n  \"runs\": [\n    \
                    { \"threads\": 2, \"wall_ms\": 100.00, \"cells\": 8 }\n  ]\n}";
        let v = evaluate("BENCH_serve.json", text, DEFAULT_TOL).expect("gates");
        assert_eq!(v.baseline, None);
        assert_eq!(v.pool, 0);
        assert!(v.pass(), "no history must never fail the gate");
        assert!(evaluate("x", "{}", DEFAULT_TOL).is_none(), "no runs at all");
    }

    #[test]
    fn ranking_puts_the_worst_regression_first() {
        let mk = |report: &str, rate: f64, baseline: Option<f64>| Verdict {
            report: report.to_string(),
            current: RunRecord {
                threads: 1,
                wall_ms: 1000.0,
                cells: 1,
            },
            rate,
            baseline,
            pool: baseline.is_some().into(),
            tol: DEFAULT_TOL,
        };
        let mut vs = vec![
            mk("a", 90.0, Some(100.0)),
            mk("b", 50.0, Some(100.0)),
            mk("c", 10.0, None),
        ];
        rank(&mut vs);
        let order: Vec<&str> = vs.iter().map(|v| v.report.as_str()).collect();
        assert_eq!(
            order,
            ["b", "a", "c"],
            "worst ratio first, no-baseline last"
        );
    }

    #[test]
    fn degenerate_runs_never_divide_by_zero() {
        assert_eq!(
            rate(&RunRecord {
                threads: 1,
                wall_ms: 0.0,
                cells: 100
            }),
            None
        );
        assert_eq!(
            rate(&RunRecord {
                threads: 1,
                wall_ms: 5.0,
                cells: 0
            }),
            None
        );
    }

    #[test]
    fn serve_latency_fields_parse_informationally() {
        let text = "  \"latency_us\": { \"mean\": 34057, \"p50_hi\": 32767, \"p99_hi\": 131071 },";
        assert_eq!(number_field(text, "p50_hi"), Some(32767.0));
        assert_eq!(number_field(text, "p99_hi"), Some(131071.0));
        assert_eq!(number_field(text, "absent"), None);
    }
}
