//! Fig. 8: Ivy Bridge divergent-branch micro-benchmark — relative execution
//! time versus the pattern of enabled SIMD lanes in a balanced if/else.
//!
//! The paper infers from this experiment that real Ivy Bridge executes a
//! SIMD16 instruction whose upper or lower eight lanes are idle in two
//! cycles; our simulator models exactly that optimization, so the same
//! pattern must emerge: FFFF ≈ 1.0, F0F0 ≈ 2.0, 00FF ≈ 1.0, FF0F ≈ 1.5,
//! AAAA ≈ 2.0.

use super::Outcome;
use crate::{bar, print_config, run_mode, scale};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_workloads::micro::{mask_pattern, FIG8_PATTERNS};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 8: relative execution time vs if/else enabled-lane pattern ==\n");
    print_config(&GpuConfig::paper_default().with_compaction(CompactionMode::IvyBridge));
    let cycles: Vec<(u16, u64)> = FIG8_PATTERNS
        .iter()
        .map(|&pat| {
            let built = mask_pattern(pat, scale());
            (pat, run_mode(&built, CompactionMode::IvyBridge).cycles)
        })
        .collect();
    let base = cycles[0].1 as f64;
    println!(
        "\n{:<10} {:>12} {:>10}  bar (200% full)",
        "pattern", "cycles", "relative"
    );
    let paper = [1.0, 2.0, 1.0, 1.5, 2.0];
    for ((pat, c), want) in cycles.iter().zip(paper) {
        let rel = *c as f64 / base;
        println!(
            "0x{pat:04X}    {c:>12} {rel:>9.2}x  |{}|  (paper ~{want:.1}x)",
            bar(rel / 2.0, 30)
        );
    }
    Outcome::done()
}
