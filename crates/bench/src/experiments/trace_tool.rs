//! `trace_tool` — command-line utility for execution-mask trace files.
//!
//! ```console
//! iwc trace_tool gen <profile-name> <out.iwct> [len]   # generate a synthetic trace
//! iwc trace_tool capture <workload> <out.iwct>         # simulate + capture masks
//! iwc trace_tool analyze <in.iwct>                     # Fig. 9/10 style report
//! iwc trace_tool list                                  # available profiles/workloads
//! ```

use super::Outcome;
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_trace::{analyze, corpus, Trace};
use iwc_workloads::catalog;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn usage() -> Outcome {
    eprintln!(
        "usage:\n  trace_tool gen <profile> <out.iwct> [len]\n  \
         trace_tool capture <workload> <out.iwct>\n  \
         trace_tool analyze <in.iwct>\n  trace_tool list"
    );
    Outcome::fail()
}

pub(crate) fn run(args: &[String]) -> Outcome {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("synthetic profiles:");
            for p in corpus() {
                println!(
                    "  {:<24} eff target {:.0}% {}",
                    p.name,
                    100.0 * p.efficiency,
                    if p.opengl { "[OpenGL]" } else { "[OpenCL]" }
                );
            }
            println!("\nsimulated workloads (capture):");
            for e in catalog() {
                println!("  {}", e.name);
            }
            Outcome::done()
        }
        Some("gen") if args.len() >= 3 => {
            let name = &args[1];
            let Some(profile) = corpus().into_iter().find(|p| p.name == *name) else {
                eprintln!("unknown profile {name:?} (see `trace_tool list`)");
                return Outcome::fail();
            };
            let len = args
                .get(3)
                .and_then(|v| v.parse().ok())
                .unwrap_or(iwc_trace::synth::DEFAULT_TRACE_LEN);
            let trace = profile.generate(len);
            match File::create(&args[2])
                .map_err(|e| e.to_string())
                .and_then(|f| trace.write_to(BufWriter::new(f)).map_err(|e| e.to_string()))
            {
                Ok(()) => {
                    println!("wrote {} records to {}", trace.len(), args[2]);
                    Outcome::done()
                }
                Err(e) => {
                    eprintln!("write failed: {e}");
                    Outcome::fail()
                }
            }
        }
        Some("capture") if args.len() >= 3 => {
            let name = &args[1];
            let Some(entry) = catalog().into_iter().find(|e| e.name == name) else {
                eprintln!("unknown workload {name:?} (see `trace_tool list`)");
                return Outcome::fail();
            };
            let built = (entry.build)(1);
            let cfg = GpuConfig::paper_default().with_mask_capture(true);
            let result = match built.run(&cfg) {
                Ok((r, _)) => r,
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    return Outcome::fail();
                }
            };
            let trace = Trace::from_mask_stream(name.clone(), &result.eu.mask_trace);
            match File::create(&args[2])
                .map_err(|e| e.to_string())
                .and_then(|f| trace.write_to(BufWriter::new(f)).map_err(|e| e.to_string()))
            {
                Ok(()) => {
                    println!(
                        "simulated {} cycles, captured {} records to {}",
                        result.cycles,
                        trace.len(),
                        args[2]
                    );
                    Outcome::done()
                }
                Err(e) => {
                    eprintln!("write failed: {e}");
                    Outcome::fail()
                }
            }
        }
        Some("analyze") if args.len() >= 2 => {
            let trace = match File::open(&args[1])
                .map_err(|e| e.to_string())
                .and_then(|f| Trace::read_from(BufReader::new(f)).map_err(|e| e.to_string()))
            {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("read failed: {e}");
                    return Outcome::fail();
                }
            };
            let r = analyze(&trace);
            println!("trace {:?}: {} records", trace.name, trace.len());
            println!(
                "SIMD efficiency {:.1}% ({})",
                100.0 * r.simd_efficiency(),
                if r.is_coherent() {
                    "coherent"
                } else {
                    "divergent"
                }
            );
            println!("utilization breakdown:");
            for (bucket, frac) in r.buckets() {
                if frac > 0.0 {
                    println!("  {:<10} {:>6.1}%", bucket.label(), 100.0 * frac);
                }
            }
            println!(
                "EU-cycle reduction over IVB: bcc {:.1}%, scc {:.1}% (+{:.1}% from swizzling)",
                100.0 * r.reduction(CompactionMode::Bcc),
                100.0 * r.reduction(CompactionMode::Scc),
                100.0 * r.scc_extra()
            );
            Outcome::done()
        }
        _ => usage(),
    }
}
