//! Fig. 9: SIMD utilization breakdown in SIMD8 and SIMD16 instructions for
//! divergent workloads — the fraction of instructions in each active-lane
//! bucket (1-4/16, 5-8/16, 9-12/16, 13-16/16, 1-4/8, 5-8/8).

use super::Outcome;
use crate::runner::{self, parallel_map};
use crate::{run_mode, scale, trace_len};
use iwc_compaction::{CompactionMode, UtilBucket};
use iwc_trace::{analyze_corpus, corpus};
use iwc_workloads::{catalog, Category};

fn print_row(name: &str, buckets: &[(UtilBucket, f64); 7], src: &str) {
    print!("{name:<22}");
    for (_, frac) in buckets.iter().take(6) {
        print!(" {:>8.1}%", 100.0 * frac);
    }
    println!("  [{src}]");
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 9: SIMD utilization breakdown (divergent workloads) ==\n");
    print!("{:<22}", "workload");
    for b in UtilBucket::ALL.iter().take(6) {
        print!(" {:>9}", b.label());
    }
    println!();

    let entries: Vec<_> = catalog()
        .into_iter()
        .filter(|e| e.category == Category::Divergent)
        .collect();
    let profiles = corpus();
    let cells = entries.len() + profiles.len();

    let sim_rows = parallel_map(&entries, |entry| {
        let built = (entry.build)(scale());
        let r = run_mode(&built, CompactionMode::IvyBridge);
        (entry.name, r.eu.simd_tally.bucket_fractions())
    });
    for (name, buckets) in &sim_rows {
        print_row(name, buckets, "sim");
    }
    let reports = analyze_corpus(&profiles, trace_len(), runner::threads());
    crate::telemetry().absorb(&iwc_trace::corpus_snapshot(&reports));
    for report in reports {
        print_row(&report.name, &report.buckets(), "trace");
    }
    println!(
        "\ncompaction potential: 1-4/16 saves 3 cycles, 5-8/16 saves 2, 9-12/16 saves 1, \
         1-4/8 saves 1; 13-16/16 and 5-8/8 save none (paper §5.3)"
    );
    Outcome::cells(cells)
}
