//! Ablation: front-end issue bandwidth (§4.3).
//!
//! "As BCC and SCC both increase the overall throughput of the EUs,
//! adequate instruction fetch bandwidth and front-end processing bandwidth
//! may be needed to balance the higher rate of execution." This harness
//! sweeps the issue width: with a 1-instruction/cycle front end, heavily
//! compressed SIMD8 streams hit the issue wall and BCC/SCC gains clip; a
//! 2-wide front end unlocks them.

use super::Outcome;
use crate::{cycle_reduction, pct, scale};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_workloads::micro::pipe_mix;

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== ablation: front-end issue bandwidth vs realized compaction gain ==\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "workload", "scc @issue1", "scc @issue2", "bcc @issue1", "bcc @issue2"
    );
    // Compute-bound divergent kernels: sparse quad pattern 0x00F0, one
    // active quad out of the warp. SIMD8 compresses from 2 waves/instr to
    // 1 — exactly where a 1-wide front end becomes the wall.
    for (label, simd) in [("pipemix-s8", 8u32), ("pipemix-s16", 16)] {
        let built = pipe_mix(0x00F0, simd, scale());
        let run = |mode: CompactionMode, issue: u32| {
            let cfg = GpuConfig::paper_default()
                .with_compaction(mode)
                .with_issue_per_cycle(issue)
                .with_dc_bandwidth(2.0); // remove the memory bottleneck
            built.run_checked(&cfg).unwrap_or_else(|e| panic!("{e}"))
        };
        let base1 = run(CompactionMode::IvyBridge, 1);
        let base2 = run(CompactionMode::IvyBridge, 2);
        println!(
            "{label:<16} {:>12} {:>12} {:>12} {:>12}",
            pct(cycle_reduction(&base1, &run(CompactionMode::Scc, 1))),
            pct(cycle_reduction(&base2, &run(CompactionMode::Scc, 2))),
            pct(cycle_reduction(&base1, &run(CompactionMode::Bcc, 1))),
            pct(cycle_reduction(&base2, &run(CompactionMode::Bcc, 2))),
        );
    }
    println!(
        "\nreading: compressed dual-pipe streams demand more than one issue slot per \
         cycle, so a 1-wide front end clips the gain; widening the front end to two \
         issues per cycle unlocks it — §4.3's provisioning requirement."
    );
    Outcome::done()
}
