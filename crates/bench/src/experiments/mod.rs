//! Declarative experiment registry: every figure, table, ablation, and
//! tool of the evaluation as one [`Experiment`] descriptor, dispatched by
//! the unified `iwc` driver binary (`iwc fig10`, `iwc table4`, …).
//!
//! The legacy per-experiment binaries (`fig10`, `table4`, …) are thin
//! wrappers over [`dispatch`], so both entry points share one code path
//! and emit byte-identical stdout (enforced by
//! `crates/bench/tests/determinism.rs`). Adding a design point is adding
//! one module with a `run` function and one row in [`EXPERIMENTS`] —
//! no new binary, no new scaffolding.

mod ablation_dtype;
mod ablation_energy;
mod ablation_frontend;
mod ablation_interwarp;
mod ablation_swizzle;
mod ablation_width;
mod corpusbench;
mod fig10;
mod fig11;
mod fig12;
mod fig3;
mod fig8;
mod fig9;
mod memprobe;
mod pack_tool;
mod perfgate;
mod profile;
mod rf_area;
mod run_kernel;
mod serve_daemon;
mod servebench;
mod simbench;
mod stall_profile;
mod table2;
mod table4;
mod trace_export;
mod trace_tool;

use crate::runner::Harness;
use std::process::ExitCode;

/// Result of one experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Evaluation cells the sweep ran — recorded in the perf report when
    /// the experiment is harnessed.
    pub cells: usize,
    /// Process exit code (0 = success).
    pub code: u8,
}

impl Outcome {
    /// Successful run of `cells` evaluation cells.
    pub fn cells(cells: usize) -> Self {
        Outcome { cells, code: 0 }
    }

    /// Successful run without cell accounting.
    pub fn done() -> Self {
        Self::cells(0)
    }

    /// Failed run (exit code 1).
    pub fn fail() -> Self {
        Outcome { cells: 0, code: 1 }
    }
}

/// Presentation group of an experiment — `iwc list` prints the registry
/// grouped by category now that it has grown past a dozen entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Paper artifacts: figures and tables of the evaluation.
    Figures,
    /// Diagnostics: profilers and probes beyond the paper's plots.
    Diagnostics,
    /// Design-space ablations.
    Ablations,
    /// Performance benchmarks writing `BENCH_*.json` reports.
    Benches,
    /// Tools and services: trace/pack utilities, kernel runner, daemon.
    Tools,
}

impl Category {
    /// Every category, in `iwc list` presentation order.
    pub const ALL: [Category; 5] = [
        Category::Figures,
        Category::Diagnostics,
        Category::Ablations,
        Category::Benches,
        Category::Tools,
    ];

    /// Group heading shown by `iwc list`.
    pub fn heading(self) -> &'static str {
        match self {
            Category::Figures => "figures & tables",
            Category::Diagnostics => "diagnostics",
            Category::Ablations => "ablations",
            Category::Benches => "benches",
            Category::Tools => "tools & services",
        }
    }
}

/// One experiment in the registry: a named, self-describing entry point.
///
/// The descriptor carries everything the driver needs; the body keeps full
/// ownership of its stdout so report text stays byte-identical to the
/// pre-registry binaries.
pub struct Experiment {
    /// Subcommand name (`iwc <name>`), which is also the legacy binary name.
    pub name: &'static str,
    /// One-line description shown by `iwc list`.
    pub about: &'static str,
    /// Group `iwc list` files the experiment under.
    pub category: Category,
    /// When set, the driver wraps the run in a [`Harness`] perf record
    /// with this stem (`results/bench_<stem>.json`). Bookkeeping goes to
    /// stderr and the results file only — never stdout.
    pub harness: Option<&'static str>,
    /// The experiment body; receives the arguments after the subcommand.
    pub run: fn(&[String]) -> Outcome,
}

/// Every experiment, in DESIGN.md §4 presentation order: paper artifacts
/// first (figures, then tables), then diagnostics, ablations, and tools.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig3",
        category: Category::Figures,
        about: "SIMD efficiency of the workload suite, coherent/divergent split",
        harness: Some("fig3"),
        run: fig3::run,
    },
    Experiment {
        name: "fig8",
        category: Category::Figures,
        about: "Ivy Bridge divergence micro-benchmark, relative times",
        harness: None,
        run: fig8::run,
    },
    Experiment {
        name: "fig9",
        category: Category::Figures,
        about: "SIMD utilization breakdown of divergent workloads",
        harness: Some("fig9"),
        run: fig9::run,
    },
    Experiment {
        name: "fig10",
        category: Category::Figures,
        about: "EU execution-cycle reduction from BCC and SCC",
        harness: Some("fig10"),
        run: fig10::run,
    },
    Experiment {
        name: "fig11",
        category: Category::Figures,
        about: "Ray tracing: total vs EU cycle reduction, DC1/DC2, throughput",
        harness: Some("fig11"),
        run: fig11::run,
    },
    Experiment {
        name: "fig12",
        category: Category::Figures,
        about: "Rodinia: total vs EU cycle reduction, 128KB vs perfect L3",
        harness: Some("fig12"),
        run: fig12::run,
    },
    Experiment {
        name: "table2",
        category: Category::Figures,
        about: "Nested-branch benefit of IVB/BCC/SCC",
        harness: Some("table2"),
        run: table2::run,
    },
    Experiment {
        name: "table4",
        category: Category::Figures,
        about: "Summary of max/average BCC and SCC benefits",
        harness: Some("table4"),
        run: table4::run,
    },
    Experiment {
        name: "rf_area",
        category: Category::Diagnostics,
        about: "Register-file organization study (Fig. 5 / §4.3)",
        harness: None,
        run: rf_area::run,
    },
    Experiment {
        name: "stall_profile",
        category: Category::Diagnostics,
        about: "Stall attribution of divergent workloads (§5.4)",
        harness: None,
        run: stall_profile::run,
    },
    Experiment {
        name: "profile",
        category: Category::Diagnostics,
        about: "Per-instruction divergence hotspots of one workload",
        harness: Some("profile"),
        run: profile::run,
    },
    Experiment {
        name: "memprobe",
        category: Category::Diagnostics,
        about: "Memory-divergence probe of the ray-tracing workloads",
        harness: None,
        run: memprobe::run,
    },
    Experiment {
        name: "ablation_dtype",
        category: Category::Ablations,
        about: "Element width vs compaction benefit (§4.1)",
        harness: None,
        run: ablation_dtype::run,
    },
    Experiment {
        name: "ablation_energy",
        category: Category::Ablations,
        about: "Dynamic-energy estimate of BCC and SCC (§4.3)",
        harness: None,
        run: ablation_energy::run,
    },
    Experiment {
        name: "ablation_frontend",
        category: Category::Ablations,
        about: "Front-end issue bandwidth vs realized gain (§4.3)",
        harness: None,
        run: ablation_frontend::run,
    },
    Experiment {
        name: "ablation_interwarp",
        category: Category::Ablations,
        about: "Intra-warp vs inter-warp compaction (§3.2, §6)",
        harness: None,
        run: ablation_interwarp::run,
    },
    Experiment {
        name: "ablation_width",
        category: Category::Ablations,
        about: "SIMD width vs compaction opportunity (§7)",
        harness: None,
        run: ablation_width::run,
    },
    Experiment {
        name: "ablation_swizzle",
        category: Category::Ablations,
        about: "Swizzle-network reach: distance-limited SCC crossbars (§4.3)",
        harness: Some("ablation_swizzle"),
        run: ablation_swizzle::run,
    },
    Experiment {
        name: "simbench",
        category: Category::Benches,
        about: "Decoded vs reference interpreter throughput (BENCH_sim.json)",
        harness: None,
        run: simbench::run,
    },
    Experiment {
        name: "serve",
        category: Category::Tools,
        about: "Simulation-as-a-service daemon (HTTP + WebSocket, DESIGN.md \u{a7}10)",
        harness: None,
        run: serve_daemon::run,
    },
    Experiment {
        name: "servebench",
        category: Category::Benches,
        about: "Closed-loop serve-path load generator (BENCH_serve.json)",
        harness: None,
        run: servebench::run,
    },
    Experiment {
        name: "corpusbench",
        category: Category::Benches,
        about: "Streaming corpus-pack analysis throughput (BENCH_corpus.json)",
        harness: None,
        run: corpusbench::run,
    },
    Experiment {
        name: "perfgate",
        category: Category::Benches,
        about: "Regression gate over the BENCH_*.json run trajectories",
        harness: None,
        run: perfgate::run,
    },
    Experiment {
        name: "run_kernel",
        category: Category::Tools,
        about: "Assemble and run an .iwcasm kernel under any engine",
        harness: None,
        run: run_kernel::run,
    },
    Experiment {
        name: "trace_tool",
        category: Category::Tools,
        about: "Generate / capture / analyze execution-mask trace files",
        harness: None,
        run: trace_tool::run,
    },
    Experiment {
        name: "pack",
        category: Category::Tools,
        about: "Write the expanded corpus (or .iwct files) into an .iwcc pack",
        harness: None,
        run: pack_tool::run_pack,
    },
    Experiment {
        name: "unpack",
        category: Category::Tools,
        about: "Extract traces from an .iwcc pack back into .iwct files",
        harness: None,
        run: pack_tool::run_unpack,
    },
    Experiment {
        name: "trace-export",
        category: Category::Tools,
        about: "Export one run as Chrome trace-event JSON (Perfetto)",
        harness: Some("trace_export"),
        run: trace_export::run,
    },
];

/// Looks an experiment up by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

/// Runs experiment `name` with `args`, handling the perf-harness
/// bookkeeping — the single code path behind both the `iwc` driver and the
/// legacy per-experiment binaries.
pub fn dispatch(name: &str, args: &[String]) -> ExitCode {
    let Some(exp) = find(name) else {
        match suggest(name) {
            Some(s) => {
                eprintln!("unknown experiment {name:?} (did you mean {s:?}?); see `iwc list`");
            }
            None => eprintln!("unknown experiment {name:?}; see `iwc list`"),
        }
        return ExitCode::FAILURE;
    };
    let harness = exp.harness.map(Harness::begin);
    let outcome = (exp.run)(args);
    if outcome.code == 0 {
        if let Some(h) = harness {
            h.finish(outcome.cells);
        }
    }
    ExitCode::from(outcome.code)
}

/// Prints the registry (the `iwc list` subcommand), grouped by category
/// with descriptions aligned to the longest experiment name.
pub fn list() {
    println!("experiments:");
    let width = EXPERIMENTS.iter().map(|e| e.name.len()).max().unwrap_or(0);
    for cat in Category::ALL {
        let group: Vec<&Experiment> = EXPERIMENTS.iter().filter(|e| e.category == cat).collect();
        if group.is_empty() {
            continue;
        }
        println!("\n{}:", cat.heading());
        for e in group {
            println!("  {:<width$}  {}", e.name, e.about);
        }
    }
}

/// Closest registered experiment name to a mistyped one: a prefix match in
/// either direction counts as distance 1, otherwise Levenshtein distance;
/// suggestions further than 3 edits away are suppressed (ties break
/// alphabetically).
fn suggest(name: &str) -> Option<&'static str> {
    EXPERIMENTS
        .iter()
        .map(|e| {
            let d = if !name.is_empty() && (e.name.starts_with(name) || name.starts_with(e.name)) {
                1
            } else {
                edit_distance(name, e.name)
            };
            (d, e.name)
        })
        .min()
        .filter(|&(d, _)| d <= 3)
        .map(|(_, n)| n)
}

/// Levenshtein distance over bytes (experiment names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_findable() {
        let mut names: Vec<_> = EXPERIMENTS.iter().map(|e| e.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate experiment names");
        assert!(find("fig10").is_some());
        assert!(find("ablation_swizzle").is_some());
        assert!(find("profile").is_some());
        assert!(find("trace-export").is_some());
        assert!(find("pack").is_some());
        assert!(find("unpack").is_some());
        assert!(find("corpusbench").is_some());
        assert!(find("perfgate").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn suggestions_for_near_misses() {
        assert_eq!(suggest("fig99"), Some("fig9"));
        assert_eq!(suggest("fig"), Some("fig10"), "prefix tie breaks by name");
        assert_eq!(suggest("trace_export"), Some("trace-export"));
        assert_eq!(suggest("profil"), Some("profile"));
        assert_eq!(suggest("zzzzzzzzzzz"), None, "far names stay unsuggested");
        assert_eq!(suggest(""), None, "empty input matches nothing usefully");
        // The corpus-store additions stay reachable through typos too.
        assert_eq!(suggest("pck"), Some("pack"));
        assert_eq!(suggest("unpck"), Some("unpack"));
        assert_eq!(suggest("corpsbench"), Some("corpusbench"));
        assert_eq!(suggest("corpusbenc"), Some("corpusbench"));
        assert_eq!(suggest("prefgate"), Some("perfgate"));
    }

    #[test]
    fn categories_cover_the_registry_and_group_sanely() {
        for e in EXPERIMENTS {
            assert!(
                Category::ALL.contains(&e.category),
                "{} has an unlisted category",
                e.name
            );
        }
        let of = |name: &str| find(name).expect(name).category;
        assert_eq!(of("fig10"), Category::Figures);
        assert_eq!(of("table4"), Category::Figures);
        assert_eq!(of("profile"), Category::Diagnostics);
        assert_eq!(of("ablation_swizzle"), Category::Ablations);
        assert_eq!(of("simbench"), Category::Benches);
        assert_eq!(of("corpusbench"), Category::Benches);
        assert_eq!(of("perfgate"), Category::Benches);
        assert_eq!(of("pack"), Category::Tools);
        assert_eq!(of("unpack"), Category::Tools);
        // Every category is populated, so `iwc list` prints all headings.
        for cat in Category::ALL {
            assert!(
                EXPERIMENTS.iter().any(|e| e.category == cat),
                "category {:?} is empty",
                cat
            );
        }
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("fig99", "fig9"), 1);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn every_legacy_binary_has_an_entry() {
        for name in [
            "fig3",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "table2",
            "table4",
            "rf_area",
            "stall_profile",
            "memprobe",
            "ablation_dtype",
            "ablation_energy",
            "ablation_frontend",
            "ablation_interwarp",
            "ablation_width",
            "run_kernel",
            "trace_tool",
        ] {
            assert!(find(name).is_some(), "missing experiment {name}");
        }
    }
}
