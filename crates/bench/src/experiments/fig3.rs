//! Fig. 3: SIMD efficiency of the workload suite on the Ivy Bridge-style
//! architecture, split into coherent (≥ 95 %) and divergent applications.
//!
//! Simulated workloads (Table 1 subset) run on the cycle-level simulator;
//! the trace-only corpus (LuxMark, GLBench, Face-Detection, …) is analyzed
//! from synthetic mask traces (see DESIGN.md substitutions).

use super::Outcome;
use crate::runner::{self, parallel_map};
use crate::{bar, run_mode, scale, trace_len};
use iwc_compaction::CompactionMode;
use iwc_trace::{analyze_corpus, corpus};
use iwc_workloads::catalog;

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 3: SIMD efficiency, coherent/divergent split ==\n");
    let entries = catalog();
    let profiles = corpus();
    let cells = entries.len() + profiles.len();

    let mut rows: Vec<(String, f64, &'static str)> = parallel_map(&entries, |entry| {
        let built = (entry.build)(scale());
        let r = run_mode(&built, CompactionMode::IvyBridge);
        (entry.name.to_string(), r.simd_efficiency(), "sim")
    });
    let reports = analyze_corpus(&profiles, trace_len(), runner::threads());
    crate::telemetry().absorb(&iwc_trace::corpus_snapshot(&reports));
    rows.extend(
        reports
            .into_iter()
            .map(|report| (report.name.clone(), report.simd_efficiency(), "trace")),
    );

    // Present like the figure: divergent block first (ascending efficiency),
    // then the coherent block.
    let (mut divergent, mut coherent): (Vec<_>, Vec<_>) =
        rows.into_iter().partition(|(_, eff, _)| *eff < 0.95);
    divergent.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    coherent.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    println!("-- divergent benchmarks (SIMD efficiency < 95%) --");
    for (name, eff, src) in &divergent {
        println!(
            "{name:<22} {:>6.1}%  |{}| [{src}]",
            100.0 * eff,
            bar(*eff, 40)
        );
    }
    println!("\n-- coherent benchmarks (SIMD efficiency >= 95%) --");
    for (name, eff, src) in &coherent {
        println!(
            "{name:<22} {:>6.1}%  |{}| [{src}]",
            100.0 * eff,
            bar(*eff, 40)
        );
    }
    println!(
        "\n{} divergent, {} coherent (paper: divergent block on the right of Fig. 3)",
        divergent.len(),
        coherent.len()
    );
    Outcome::cells(cells)
}
