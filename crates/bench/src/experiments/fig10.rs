//! Fig. 10: EU execution-cycle reduction of kernels from BCC and SCC, over
//! and above the existing Ivy Bridge optimization, for divergent workloads.
//!
//! Bars stack the BCC reduction and the additional SCC reduction, exactly
//! like the paper's figure.

use super::Outcome;
use crate::runner::{self, parallel_map};
use crate::{bar, pct, run_mode, scale, trace_len};
use iwc_compaction::{CompactionMode, CompactionTally};
use iwc_trace::{analyze_corpus, corpus};
use iwc_workloads::{catalog, Category};

fn print_row(name: &str, tally: &CompactionTally, src: &str) {
    let bcc = tally.reduction_vs_ivb(CompactionMode::Bcc);
    let scc = tally.reduction_vs_ivb(CompactionMode::Scc);
    println!(
        "{name:<22} bcc {} + scc {} = {}  |{}| [{src}]",
        pct(bcc),
        pct(scc - bcc),
        pct(scc),
        bar(scc / 0.5, 30)
    );
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 10: EU execution-cycle reduction with BCC & SCC (above IVB opt) ==\n");
    let entries: Vec<_> = catalog()
        .into_iter()
        .filter(|e| e.category == Category::Divergent)
        .collect();
    let profiles = corpus();
    let cells = entries.len() + profiles.len();

    let sim_rows = parallel_map(&entries, |entry| {
        let built = (entry.build)(scale());
        let r = run_mode(&built, CompactionMode::IvyBridge);
        (entry.name, r.compute_tally().clone())
    });

    let mut all_bcc = Vec::new();
    let mut all_scc = Vec::new();
    for (name, t) in &sim_rows {
        print_row(name, t, "sim");
        all_bcc.push(t.reduction_vs_ivb(CompactionMode::Bcc));
        all_scc.push(t.reduction_vs_ivb(CompactionMode::Scc));
    }
    let reports = analyze_corpus(&profiles, trace_len(), runner::threads());
    crate::telemetry().absorb(&iwc_trace::corpus_snapshot(&reports));
    for report in reports {
        print_row(&report.name, &report.tally, "trace");
        all_bcc.push(report.reduction(CompactionMode::Bcc));
        all_scc.push(report.reduction(CompactionMode::Scc));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\naverage: bcc {} scc {}   max: bcc {} scc {}",
        pct(avg(&all_bcc)),
        pct(avg(&all_scc)),
        pct(max(&all_bcc)),
        pct(max(&all_scc))
    );
    println!("paper: up to 42% reduction, ~20% average for divergent applications");
    Outcome::cells(cells)
}
