//! Ablation: intra-warp vs inter-warp compaction (§3.2, §6, contribution 2).
//!
//! An idealized TBC-style inter-warp compactor merges same-PC warps
//! lane-preservingly. This harness quantifies the paper's two comparative
//! claims on synthetic warp groups:
//!
//! 1. lane conflicts limit inter-warp compaction on strided patterns that
//!    SCC handles trivially ("TBC-like approaches cannot [optimize the
//!    Fig. 4(b) pattern] when it is repeated across warps because those
//!    optimizations preserve lane/channel positions");
//! 2. merging warps mixes their address streams, inflating memory
//!    divergence, while intra-warp compaction leaves it untouched.

use super::Outcome;
use crate::pct;
use iwc_compaction::{evaluate_group, waves, CompactionMode};
use iwc_isa::ExecMask;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn group_waves(group: &[ExecMask]) -> (u64, u64, u64) {
    let intra: u64 = group
        .iter()
        .map(|&m| u64::from(waves(m, CompactionMode::Scc)))
        .sum();
    let base: u64 = group
        .iter()
        .map(|&m| u64::from(waves(m, CompactionMode::Baseline)))
        .sum();
    let merged = iwc_compaction::compact_masks(group);
    let inter: u64 = merged
        .masks
        .iter()
        .map(|&m| u64::from(waves(m, CompactionMode::Baseline)))
        .sum();
    (base, intra, inter)
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== ablation: intra-warp (SCC) vs inter-warp (TBC-style) compaction ==\n");

    println!("-- execution cycles per warp-group pattern --");
    println!(
        "{:<34} {:>9} {:>10} {:>10}",
        "pattern (4 warps)", "baseline", "intra/SCC", "inter/TBC"
    );
    let cases: [(&str, [u32; 4]); 4] = [
        ("complementary halves", [0x00FF, 0xFF00, 0x00FF, 0xFF00]),
        ("same strided 0xAAAA everywhere", [0xAAAA; 4]),
        (
            "one quad active, rotating",
            [0x000F, 0x00F0, 0x0F00, 0xF000],
        ),
        ("sparse random-ish", [0x8421, 0x1248, 0x2184, 0x4812]),
    ];
    for (label, bits) in cases {
        let group: Vec<ExecMask> = bits.iter().map(|&b| ExecMask::new(b, 16)).collect();
        let (base, intra, inter) = group_waves(&group);
        println!("{label:<34} {base:>9} {intra:>10} {inter:>10}");
    }
    println!(
        "\n→ inter-warp wins where lanes complement across warps; it is useless on \
         repeated strided masks (lane conflicts), which SCC compresses 2:1."
    );

    println!("\n-- memory divergence of merged warps --");
    // Warp groups whose per-warp accesses are coherent (each warp reads one
    // run of consecutive addresses) but live in different regions: merging
    // interleaves regions per message.
    let mut rng = SmallRng::seed_from_u64(11);
    let mut tot_inflation = 0.0;
    const TRIALS: usize = 200;
    for _ in 0..TRIALS {
        let group: Vec<ExecMask> = (0..4)
            .map(|_| {
                let start = rng.gen_range(0..12u32);
                let len = rng.gen_range(3..=8u32);
                let mut bits = 0u32;
                for i in 0..len {
                    bits |= 1 << ((start + i) % 16);
                }
                ExecMask::new(bits, 16)
            })
            .collect();
        let addrs: Vec<Vec<u32>> = (0..4)
            .map(|w| {
                let base = 4096 * (w as u32 + 1);
                (0..16).map(|l| base + 4 * l).collect()
            })
            .collect();
        let stats = evaluate_group(&group, &addrs, 64);
        tot_inflation += stats.divergence_inflation();
    }
    println!(
        "average lines-per-access inflation from warp merging: {:.2}x over {} random \
         coherent-warp groups (intra-warp compaction: exactly 1.00x by construction)",
        tot_inflation / TRIALS as f64,
        TRIALS
    );
    println!(
        "\npaper contribution 2: 'Our techniques intrinsically do not create additional \
         memory divergence beyond what may already exist in an application.'"
    );
    let _ = pct(0.0);
    Outcome::done()
}
