//! Stall-attribution profile: where divergent workloads lose their cycles
//! (the analysis behind §5.4 — "some of these benchmarks suffer from the
//! long latency memory access times that cannot be hidden"; "if memory
//! stalls dominate the execution time as is the case for BFS, any
//! optimization in EU cycles will not make a noticeable impact").
//!
//! Each row attributes thread issue-attempt failures to: scoreboard
//! dependences (dominated by in-flight memory loads), pipe occupancy (the
//! cycles compaction removes), fences, instruction fetch, and end-of-thread
//! memory drains.

use super::Outcome;
use crate::{run_mode, scale};
use iwc_compaction::CompactionMode;
use iwc_workloads::{catalog, Category};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== stall attribution (divergent workloads, IVB baseline) ==\n");
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>9} {:>9} {:>10}",
        "workload", "cycles", "scoreboard", "pipeBusy", "fence", "ifetch", "memDrain"
    );
    for entry in catalog() {
        if entry.category != Category::Divergent {
            continue;
        }
        let built = (entry.build)(scale());
        let r = run_mode(&built, CompactionMode::IvyBridge);
        let s = &r.eu.stalls;
        let tot = s.total().max(1) as f64;
        println!(
            "{:<14} {:>10} {:>11.1}% {:>9.1}% {:>8.1}% {:>8.1}% {:>9.1}%",
            entry.name,
            r.cycles,
            100.0 * s.scoreboard as f64 / tot,
            100.0 * s.pipe_busy as f64 / tot,
            100.0 * s.stalled as f64 / tot,
            100.0 * s.ifetch as f64 / tot,
            100.0 * s.mem_drain as f64 / tot,
        );
    }
    println!(
        "\nreading: pipe-busy stalls are the compressible component; workloads dominated \
         by scoreboard stalls (memory latency) realize little of their EU-cycle gain — \
         the Fig. 12 story."
    );
    Outcome::done()
}
