//! `iwc serve` — the simulation-as-a-service daemon (DESIGN.md §10).
//!
//! Binds the `iwc-serve` HTTP/WebSocket front end and blocks until
//! drained (`POST /shutdown` or SIGTERM). Configuration comes from the
//! `IWC_SERVE_*` environment knobs, overridable with flags:
//!
//! ```text
//! iwc serve [--addr HOST:PORT] [--workers N] [--queue N]
//! ```
//!
//! The bound address is printed on stdout (`iwc-serve listening on …`)
//! so scripts binding port 0 can discover the port.

use super::Outcome;
use iwc_serve::{install_sigterm_handler, ServeConfig, Server};

fn usage() -> Outcome {
    eprintln!("usage: iwc serve [--addr HOST:PORT] [--workers N] [--queue N]");
    Outcome::fail()
}

pub(crate) fn run(args: &[String]) -> Outcome {
    let mut cfg = ServeConfig::from_env();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("serve: {flag} needs a value");
            return usage();
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--workers" => match value.parse::<usize>() {
                Ok(n) if n > 0 => cfg.workers = n,
                _ => {
                    eprintln!("serve: --workers wants a positive integer, got {value:?}");
                    return usage();
                }
            },
            "--queue" => match value.parse::<usize>() {
                Ok(n) if n > 0 => cfg.queue_depth = n,
                _ => {
                    eprintln!("serve: --queue wants a positive integer, got {value:?}");
                    return usage();
                }
            },
            other => {
                eprintln!("serve: unknown flag {other:?}");
                return usage();
            }
        }
    }

    install_sigterm_handler();
    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", cfg.addr);
            return Outcome::fail();
        }
    };
    match server.local_addr() {
        Ok(addr) => println!(
            "iwc-serve listening on http://{addr} ({} workers, queue {})",
            cfg.workers, cfg.queue_depth
        ),
        Err(e) => {
            eprintln!("serve: cannot resolve bound address: {e}");
            return Outcome::fail();
        }
    }
    // Make sure the address line reaches pipes before we block.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    if let Err(e) = server.run() {
        eprintln!("serve: accept loop failed: {e}");
        return Outcome::fail();
    }
    println!("iwc-serve drained");
    Outcome::done()
}
