//! Simulator-throughput baseline: replays the workload corpus under the
//! decoded micro-op backend and the reference interpreter, checks they
//! retire identical cycle counts, and records both throughputs (plus the
//! speedup ratio) in `results/BENCH_sim.json`.
//!
//! Stdout carries only the deterministic part — per-workload simulated
//! cycles and the agreement verdict — so the output stays byte-identical
//! across machines and thread counts. Wall-clock numbers go to stderr and
//! the JSON report, like every other harness bookkeeping channel.

use super::Outcome;
use crate::runner::{parallel_map, results_dir, threads};
use crate::scale;
use iwc_compaction::EngineId;
use iwc_sim::{ExecBackend, GpuConfig, SimResult};
use iwc_workloads::{catalog, Built};
use std::time::Instant;

/// One backend's corpus replay: total simulated cycles (summed over every
/// workload × engine cell) and the wall time the sweep took.
struct Replay {
    /// Per-workload simulated cycles, summed over the canonical engines.
    cycles_by_workload: Vec<u64>,
    total_cycles: u64,
    wall_ms: f64,
}

fn replay(built: &[Built], exec: ExecBackend) -> Replay {
    let start = Instant::now();
    let cycles_by_workload = parallel_map(built, |b| {
        EngineId::CANONICAL
            .iter()
            .map(|&engine| {
                let cfg = GpuConfig::paper_default()
                    .with_compaction(engine)
                    .with_exec(exec);
                let (r, _img): (SimResult, _) = b
                    .run(&cfg)
                    .unwrap_or_else(|e| panic!("{} under {engine}: {e}", b.name));
                r.cycles
            })
            .sum::<u64>()
    });
    let total_cycles = cycles_by_workload.iter().sum();
    Replay {
        cycles_by_workload,
        total_cycles,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn throughput(r: &Replay) -> f64 {
    if r.wall_ms > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        let t = r.total_cycles as f64 / (r.wall_ms / 1e3);
        t
    } else {
        0.0
    }
}

fn render_json(decoded: &Replay, reference: &Replay, workloads: usize) -> String {
    let speedup = if decoded.wall_ms > 0.0 {
        reference.wall_ms / decoded.wall_ms
    } else {
        0.0
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"sim\",\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"threads\": {},\n", threads()));
    out.push_str(&format!(
        "  \"corpus\": {{ \"workloads\": {workloads}, \"engines\": {}, \
         \"simulated_cycles\": {} }},\n",
        EngineId::CANONICAL.len(),
        decoded.total_cycles
    ));
    out.push_str("  \"backends\": [\n");
    for (i, (name, r)) in [("decoded", decoded), ("reference", reference)]
        .iter()
        .enumerate()
    {
        let comma = if i == 0 { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"exec\": \"{name}\", \"wall_ms\": {:.2}, \
             \"throughput_cycles_per_s\": {:.0} }}{comma}\n",
            r.wall_ms,
            throughput(r)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_decoded_vs_reference\": {speedup:.2}\n"
    ));
    out.push_str("}\n");
    out
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Simulator throughput: decoded micro-op plans vs reference interpreter ==\n");
    let entries = catalog();
    let built: Vec<Built> = entries.iter().map(|e| (e.build)(scale())).collect();

    let decoded = replay(&built, ExecBackend::Decoded);
    let reference = replay(&built, ExecBackend::Reference);

    let mut agree = true;
    for (i, e) in entries.iter().enumerate() {
        let (d, r) = (
            decoded.cycles_by_workload[i],
            reference.cycles_by_workload[i],
        );
        let mark = if d == r { "ok" } else { "MISMATCH" };
        agree &= d == r;
        println!("{:<22} {d:>12} cycles  [{mark}]", e.name);
    }
    println!(
        "\n{} workloads x {} engines: backends {}",
        entries.len(),
        EngineId::CANONICAL.len(),
        if agree { "agree" } else { "DISAGREE" }
    );

    let json = render_json(&decoded, &reference, entries.len());
    let path = results_dir().join("BENCH_sim.json");
    if let Err(e) =
        std::fs::create_dir_all(results_dir()).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    eprintln!(
        "[simbench] decoded {:.1} ms ({:.2e} cyc/s) vs reference {:.1} ms ({:.2e} cyc/s): \
         {:.2}x -> {}",
        decoded.wall_ms,
        throughput(&decoded),
        reference.wall_ms,
        throughput(&reference),
        reference.wall_ms / decoded.wall_ms.max(1e-9),
        path.display()
    );

    if agree {
        Outcome::cells(entries.len() * EngineId::CANONICAL.len() * 2)
    } else {
        Outcome::fail()
    }
}
