//! Simulator-throughput baseline: replays the workload corpus under three
//! backends — decoded micro-op plans on the event-wheel scheduler (the
//! production configuration), decoded plans on the legacy tick loop, and
//! the reference interpreter — checks all three retire identical cycle
//! counts, and records the throughputs plus speedup ratios in
//! `results/BENCH_sim.json`.
//!
//! The report also keeps a `"runs"` trajectory: one schema-compatible run
//! line (`{ threads, wall_ms, cells }`, the same line format as the
//! `bench_<name>.json` harness reports) per distinct machine
//! configuration, carried forward across regenerations so the file tracks
//! throughput across PRs. A legacy schema-1 report contributes its decoded
//! sweep as a synthesized baseline line.
//!
//! Stdout carries only the deterministic part — per-workload simulated
//! cycles and the agreement verdict — so the output stays byte-identical
//! across machines and thread counts. Wall-clock numbers go to stderr and
//! the JSON report, like every other harness bookkeeping channel.
//!
//! When `IWC_PERF_FLOOR` is set (cycles per second, e.g. `5000000`), the
//! run fails unless the production backend's throughput clears it — the
//! CI perf-smoke gate against silent simulator regressions.

use super::Outcome;
use crate::runner::{parallel_map, parse_run_line, results_dir, threads, RunRecord};
use crate::scale;
use iwc_compaction::EngineId;
use iwc_sim::{ExecBackend, GpuConfig, SchedMode, SimResult};
use iwc_workloads::{catalog, Built};
use std::time::Instant;

/// One backend configuration of the three-way sweep.
struct Backend {
    /// Name used in the JSON report and stderr summary.
    name: &'static str,
    exec: ExecBackend,
    sched: SchedMode,
}

const BACKENDS: [Backend; 3] = [
    Backend {
        name: "decoded+wheel",
        exec: ExecBackend::Decoded,
        sched: SchedMode::Wheel,
    },
    Backend {
        name: "decoded",
        exec: ExecBackend::Decoded,
        sched: SchedMode::Tick,
    },
    Backend {
        name: "reference",
        exec: ExecBackend::Reference,
        sched: SchedMode::Tick,
    },
];

/// One backend's corpus replay: total simulated cycles (summed over every
/// workload × engine cell) and the wall time the sweep took.
struct Replay {
    /// Per-workload simulated cycles, summed over the canonical engines.
    cycles_by_workload: Vec<u64>,
    total_cycles: u64,
    wall_ms: f64,
}

fn replay(built: &[Built], backend: &Backend) -> Replay {
    let start = Instant::now();
    let cycles_by_workload = parallel_map(built, |b| {
        EngineId::CANONICAL
            .iter()
            .map(|&engine| {
                let cfg = GpuConfig::paper_default()
                    .with_compaction(engine)
                    .with_exec(backend.exec)
                    .with_sched(backend.sched);
                let (r, _img): (SimResult, _) = b
                    .run(&cfg)
                    .unwrap_or_else(|e| panic!("{} under {engine}: {e}", b.name));
                r.cycles
            })
            .sum::<u64>()
    });
    let total_cycles = cycles_by_workload.iter().sum();
    Replay {
        cycles_by_workload,
        total_cycles,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn throughput(r: &Replay) -> f64 {
    if r.wall_ms > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        let t = r.total_cycles as f64 / (r.wall_ms / 1e3);
        t
    } else {
        0.0
    }
}

fn speedup(fast: &Replay, slow: &Replay) -> f64 {
    if fast.wall_ms > 0.0 {
        slow.wall_ms / fast.wall_ms
    } else {
        0.0
    }
}

/// Run lines carried over from the previous report, plus a baseline
/// synthesized from a legacy schema-1 report's decoded sweep (whose line
/// format predates the trajectory). Same-shaped runs (threads and cells
/// both equal) are superseded by the current run.
fn prior_runs(text: &str, current: &RunRecord) -> Vec<RunRecord> {
    let mut runs: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
    if runs.is_empty() {
        if let Some(r) = legacy_schema1_run(text) {
            runs.push(r);
        }
    }
    runs.retain(|r| (r.threads, r.cells) != (current.threads, current.cells));
    runs
}

/// Extracts `{ threads, wall_ms, cells }` from a schema-1 `BENCH_sim.json`
/// (two backends, no run lines): the decoded backend's wall time over
/// `workloads × engines × 2` cells.
fn legacy_schema1_run(text: &str) -> Option<RunRecord> {
    let number_after = |hay: &str, key: &str| -> Option<f64> {
        let tail = &hay[hay.find(&format!("\"{key}\""))?..];
        let tail = &tail[tail.find(':')? + 1..];
        let end = tail.find([',', '\n', '}'])?;
        tail[..end].trim().parse().ok()
    };
    let decoded = &text[text.find("\"exec\": \"decoded\"")?..];
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Some(RunRecord {
        threads: number_after(text, "threads")? as usize,
        wall_ms: number_after(decoded, "wall_ms")?,
        cells: (number_after(text, "workloads")? * number_after(text, "engines")?) as usize * 2,
    })
}

fn render_json(replays: &[Replay], workloads: usize, runs: &[RunRecord]) -> String {
    let (wheel, decoded, reference) = (&replays[0], &replays[1], &replays[2]);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"sim\",\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"threads\": {},\n", threads()));
    out.push_str(&format!(
        "  \"corpus\": {{ \"workloads\": {workloads}, \"engines\": {}, \
         \"simulated_cycles\": {} }},\n",
        EngineId::CANONICAL.len(),
        wheel.total_cycles
    ));
    out.push_str("  \"backends\": [\n");
    for (i, (b, r)) in BACKENDS.iter().zip(replays).enumerate() {
        let comma = if i + 1 < replays.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"exec\": \"{}\", \"wall_ms\": {:.2}, \
             \"throughput_cycles_per_s\": {:.0} }}{comma}\n",
            b.name,
            r.wall_ms,
            throughput(r)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_decoded_vs_reference\": {:.2},\n",
        speedup(decoded, reference)
    ));
    out.push_str(&format!(
        "  \"speedup_wheel_vs_decoded\": {:.2},\n",
        speedup(wheel, decoded)
    ));
    out.push_str(&format!(
        "  \"speedup_wheel_vs_reference\": {:.2},\n",
        speedup(wheel, reference)
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"wall_ms\": {:.2}, \"cells\": {} }}{comma}\n",
            r.threads, r.wall_ms, r.cells
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Pure parse of an `IWC_PERF_FLOOR` value: a positive throughput number
/// (`5000000`, `1e6`, …) in the gated benchmark's own unit — simulated
/// cycles/s for `simbench`, traces/s for `corpusbench`.
pub(crate) fn parse_floor(raw: &str) -> Option<f64> {
    raw.trim().parse::<f64>().ok().filter(|f| *f > 0.0)
}

/// The `IWC_PERF_FLOOR` gate: `Some(floor)` when the variable is set to a
/// valid value; malformed values warn once and disable the floor — the
/// same convention as every other `IWC_*` knob.
pub(crate) fn perf_floor() -> Option<f64> {
    let v = std::env::var("IWC_PERF_FLOOR").ok()?;
    let floor = parse_floor(&v);
    if floor.is_none() {
        crate::warn_once(
            "IWC_PERF_FLOOR",
            &format!(
                "warning: ignoring malformed IWC_PERF_FLOOR={v:?} (want throughput > 0); \
                 not enforcing a floor"
            ),
        );
    }
    floor
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!(
        "== Simulator throughput: decoded+wheel vs decoded (tick) vs reference interpreter ==\n"
    );
    let entries = catalog();
    let built: Vec<Built> = entries.iter().map(|e| (e.build)(scale())).collect();

    let replays: Vec<Replay> = BACKENDS.iter().map(|b| replay(&built, b)).collect();

    let mut agree = true;
    for (i, e) in entries.iter().enumerate() {
        let cycles = replays[0].cycles_by_workload[i];
        let ok = replays.iter().all(|r| r.cycles_by_workload[i] == cycles);
        let mark = if ok { "ok" } else { "MISMATCH" };
        agree &= ok;
        println!("{:<22} {cycles:>12} cycles  [{mark}]", e.name);
    }
    println!(
        "\n{} workloads x {} engines: backends {}",
        entries.len(),
        EngineId::CANONICAL.len(),
        if agree { "agree" } else { "DISAGREE" }
    );

    let cells = entries.len() * EngineId::CANONICAL.len() * BACKENDS.len();
    let record = RunRecord {
        threads: threads(),
        wall_ms: replays[0].wall_ms,
        cells,
    };
    let path = results_dir().join("BENCH_sim.json");
    let mut runs = prior_runs(&std::fs::read_to_string(&path).unwrap_or_default(), &record);
    runs.push(record);
    runs.sort_by_key(|r| (r.cells, r.threads));

    let json = render_json(&replays, entries.len(), &runs);
    if let Err(e) =
        std::fs::create_dir_all(results_dir()).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    for (b, r) in BACKENDS.iter().zip(&replays) {
        eprintln!(
            "[simbench] {:<14} {:>9.1} ms  ({:.2e} cyc/s)",
            b.name,
            r.wall_ms,
            throughput(r)
        );
    }
    eprintln!(
        "[simbench] wheel vs decoded {:.2}x, decoded vs reference {:.2}x -> {}",
        speedup(&replays[0], &replays[1]),
        speedup(&replays[1], &replays[2]),
        path.display()
    );

    if let Some(floor) = perf_floor() {
        let got = throughput(&replays[0]);
        if got < floor {
            eprintln!(
                "[simbench] FAIL: decoded+wheel throughput {got:.0} cyc/s is below \
                 IWC_PERF_FLOOR={floor:.0}"
            );
            return Outcome::fail();
        }
        eprintln!("[simbench] perf floor {floor:.0} cyc/s cleared ({got:.0} cyc/s)");
    }

    if agree {
        Outcome::cells(cells)
    } else {
        Outcome::fail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA1: &str = r#"{
  "name": "sim",
  "schema": 1,
  "threads": 1,
  "corpus": { "workloads": 50, "engines": 4, "simulated_cycles": 8942623 },
  "backends": [
    { "exec": "decoded", "wall_ms": 10414.46, "throughput_cycles_per_s": 858674 },
    { "exec": "reference", "wall_ms": 19065.81, "throughput_cycles_per_s": 469040 }
  ],
  "speedup_decoded_vs_reference": 1.83
}"#;

    #[test]
    fn floor_parses_positive_rates_only() {
        assert_eq!(parse_floor("5000000"), Some(5_000_000.0));
        assert_eq!(parse_floor(" 1e6 "), Some(1_000_000.0));
        assert_eq!(parse_floor("0"), None, "zero floor gates nothing");
        assert_eq!(parse_floor("-3"), None);
        assert_eq!(parse_floor("fast"), None);
        assert_eq!(parse_floor("NaN"), None);
    }

    #[test]
    fn legacy_report_synthesizes_a_baseline_run() {
        let r = legacy_schema1_run(SCHEMA1).expect("legacy report parses");
        assert_eq!(
            r,
            RunRecord {
                threads: 1,
                wall_ms: 10414.46,
                cells: 400,
            }
        );
        assert_eq!(legacy_schema1_run("{}"), None);
    }

    #[test]
    fn prior_runs_carry_history_and_supersede_same_shape() {
        let current = RunRecord {
            threads: 1,
            wall_ms: 100.0,
            cells: 600,
        };
        // Legacy report: baseline synthesized, different shape, kept.
        let runs = prior_runs(SCHEMA1, &current);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].cells, 400);

        // Schema-2 report with run lines: same-shape line superseded,
        // different-shape lines kept.
        let schema2 = "  \"runs\": [\n\
             { \"threads\": 1, \"wall_ms\": 10414.46, \"cells\": 400 },\n\
             { \"threads\": 1, \"wall_ms\": 999.0, \"cells\": 600 },\n\
             { \"threads\": 8, \"wall_ms\": 50.0, \"cells\": 600 }\n  ]";
        let runs = prior_runs(schema2, &current);
        assert_eq!(runs.len(), 2);
        assert!(runs.iter().all(|r| (r.threads, r.cells) != (1, 600)));
    }

    #[test]
    fn report_runs_stay_line_parseable() {
        let replays: Vec<Replay> = (0..3)
            .map(|i| Replay {
                cycles_by_workload: vec![500, 500],
                total_cycles: 1000,
                wall_ms: f64::from(i + 1) * 10.0,
            })
            .collect();
        let runs = vec![RunRecord {
            threads: 2,
            wall_ms: 10.0,
            cells: 24,
        }];
        let text = render_json(&replays, 2, &runs);
        let parsed: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
        assert_eq!(parsed, runs);
        assert!(
            text.contains("\"speedup_wheel_vs_decoded\": 2.00"),
            "{text}"
        );
        assert!(text.contains("\"exec\": \"decoded+wheel\""));
    }
}
