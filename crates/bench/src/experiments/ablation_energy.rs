//! Ablation: dynamic-energy estimate of BCC and SCC (§4.3's qualitative
//! discussion, made quantitative with the first-order model of
//! `iwc_compaction::energy`).
//!
//! Key expectations: BCC saves both execution and operand-fetch energy on
//! quad-idle masks; SCC saves execution energy but fetches full-width
//! operands, so its energy gain lags its cycle gain; on coherent streams
//! neither costs anything (BCC) or only its control overhead (SCC).

use super::Outcome;
use crate::{pct, trace_len};
use iwc_compaction::{CompactionMode, EnergyModel};
use iwc_trace::{analyze, corpus};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== ablation: dynamic energy of cycle compression ==\n");
    let model = EnergyModel::default();
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "eff", "bcc cyc", "bcc enrg", "scc cyc", "scc enrg"
    );
    for profile in corpus() {
        let trace = profile.generate(trace_len());
        let report = analyze(&trace);
        let stream: Vec<_> = trace.records.iter().map(|r| (r.mask(), r.dtype)).collect();
        let base = model.stream_energy(&stream, CompactionMode::IvyBridge);
        let bcc = model.stream_energy(&stream, CompactionMode::Bcc);
        let scc = model.stream_energy(&stream, CompactionMode::Scc);
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
            profile.name,
            pct(report.simd_efficiency()),
            pct(report.reduction(CompactionMode::Bcc)),
            pct(1.0 - bcc / base),
            pct(report.reduction(CompactionMode::Scc)),
            pct(1.0 - scc / base),
        );
    }
    println!(
        "\nexpected shape: BCC energy gain tracks its cycle gain (fetch suppression); \
         SCC energy gain lags its cycle gain (full-width operand latch, crossbar, \
         control logic) — §4.2/§4.3."
    );
    Outcome::done()
}
