//! Fig. 11: ray-tracing kernels — reduction in *total* execution cycles
//! under DC1 and DC2 data-cluster bandwidth, compared with the reduction in
//! *EU* cycles, plus the data-cluster throughput demand (secondary axis of
//! the paper's figure).
//!
//! The paper's finding: with one line/cycle (DC1) the realized gain is well
//! below the EU-cycle gain because the data cluster saturates; doubling the
//! bandwidth (DC2) recovers ~90 % of the EU-cycle gain.

use super::Outcome;
use crate::runner::parallel_map;
use crate::{cycle_reduction, pct, print_config, scale};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_workloads::{raytrace, Built};

fn rt_set(scale: u32) -> Vec<Built> {
    use raytrace::*;
    vec![
        primary_al(scale),
        primary_bl(scale),
        primary_wm(scale),
        ao_al8(scale),
        ao_bl8(scale),
        ao_wm8(scale),
        ao_al16(scale),
        ao_bl16(scale),
        ao_wm16(scale),
    ]
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 11: ray tracing — total vs EU cycle reduction, DC1/DC2 ==\n");
    print_config(&GpuConfig::paper_default());
    println!(
        "\n{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "workload",
        "bccDC1",
        "sccDC1",
        "bccDC2",
        "sccDC2",
        "bccEU",
        "sccEU",
        "dcBase",
        "dcBCC",
        "dcSCC"
    );
    let builts = rt_set(scale());
    let cells = builts.len();
    let modes = [
        CompactionMode::IvyBridge,
        CompactionMode::Bcc,
        CompactionMode::Scc,
    ];
    let rows = parallel_map(&builts, |built| {
        let sweep = |dc: f64| {
            crate::run_modes_cfg(
                built,
                &GpuConfig::paper_default().with_dc_bandwidth(dc),
                &modes,
            )
        };
        let dc1 = sweep(1.0);
        let dc2 = sweep(2.0);
        // EU-cycle reduction is a property of the mask stream (identical
        // across the runs); take it from the baseline run's tally.
        let t = dc1[0].compute_tally();
        format!(
            "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7.2} {:>7.2} {:>7.2}",
            built.name,
            pct(cycle_reduction(&dc1[0], &dc1[1])),
            pct(cycle_reduction(&dc1[0], &dc1[2])),
            pct(cycle_reduction(&dc2[0], &dc2[1])),
            pct(cycle_reduction(&dc2[0], &dc2[2])),
            pct(t.reduction_vs_ivb(CompactionMode::Bcc)),
            pct(t.reduction_vs_ivb(CompactionMode::Scc)),
            dc1[0].dc_throughput(),
            dc1[1].dc_throughput(),
            dc1[2].dc_throughput(),
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\npaper: DC1 realizes only part of the EU gain (data cluster saturates near \
         1 line/cycle); DC2 realizes ~90% of it"
    );
    Outcome::cells(cells)
}
