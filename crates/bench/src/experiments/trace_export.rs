//! `trace-export` — Chrome trace-event (Perfetto) export of one run.
//!
//! ```console
//! iwc trace-export <workload> [--out FILE] [--mode <label>]
//! ```
//!
//! Runs the named catalog workload once with the issue log enabled and
//! writes a Chrome trace-event JSON document: one process per EU, one track
//! per execution pipe with a slice per issue event, and the attributed
//! stall intervals as async spans (see DESIGN.md §7). The export is
//! validated against the schema checker before it is written, so a file on
//! disk is always loadable by Perfetto / `chrome://tracing`.

use super::Outcome;
use crate::scale;
use iwc_compaction::EngineRegistry;
use iwc_sim::{timeline, GpuConfig};
use iwc_workloads::catalog;

struct Options {
    workload: String,
    out: Option<String>,
    mode: iwc_compaction::EngineId,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut args = args.iter();
    let workload = args.next().ok_or("missing workload name")?.clone();
    let mut opts = Options {
        workload,
        out: None,
        mode: iwc_compaction::EngineId::IVY_BRIDGE,
    };
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--out" => opts.out = Some(value()?.clone()),
            "--mode" => {
                let v = value()?;
                let registry = EngineRegistry::global();
                opts.mode = registry.find(v).ok_or_else(|| {
                    format!("unknown mode {v:?} ({})", registry.labels().join("|"))
                })?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

pub(crate) fn run(args: &[String]) -> Outcome {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: trace-export <workload> [--out FILE] [--mode base|ivb|bcc|scc]");
            eprintln!(
                "workloads: {}",
                catalog()
                    .iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return Outcome::fail();
        }
    };
    let entries = catalog();
    let Some(entry) = entries.iter().find(|e| e.name == opts.workload) else {
        eprintln!("unknown workload {:?}", opts.workload);
        eprintln!(
            "workloads: {}",
            entries.iter().map(|e| e.name).collect::<Vec<_>>().join(" ")
        );
        return Outcome::fail();
    };
    let built = (entry.build)(scale());
    let cfg = GpuConfig::paper_default()
        .with_compaction(opts.mode)
        .with_issue_log(true);
    let r = match built.run_checked(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", built.name);
            return Outcome::fail();
        }
    };
    crate::telemetry().absorb(&r.telemetry);

    let trace = timeline::chrome_trace(&r.eu.issue_log, &r.eu.stall_log);
    let json = trace.to_json();
    let stats = match iwc_telemetry::chrome::validate(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("internal error: exported trace fails validation: {e}");
            return Outcome::fail();
        }
    };
    let path = opts.out.map_or_else(
        || {
            crate::runner::results_dir().join(format!(
                "trace_{}.json",
                built.name.replace(['/', ' '], "_")
            ))
        },
        std::path::PathBuf::from,
    );
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return Outcome::fail();
        }
    }
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return Outcome::fail();
    }
    println!(
        "{}: {} cycles under {}; wrote {} ({} metadata, {} slices, {} stall spans) -> {}",
        built.name,
        r.cycles,
        r.mode,
        human_bytes(json.len()),
        stats.metadata,
        stats.slices,
        stats.async_events / 2,
        path.display()
    );
    println!("open in https://ui.perfetto.dev or chrome://tracing");
    Outcome::cells(1)
}

fn human_bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}
