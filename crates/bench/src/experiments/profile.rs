//! `profile` — per-instruction divergence hotspots of one workload.
//!
//! ```console
//! iwc profile <workload> [--top N] [--mode <label>]
//! ```
//!
//! Runs the named catalog workload once with
//! [`GpuConfig::profile_insns`](iwc_sim::GpuConfig) enabled and prints the
//! static instructions ranked by the execution cycles intra-warp compaction
//! would save (active mode → SCC), each with its enabled-channel and
//! quad-occupancy profile, followed by a per-basic-block rollup that names
//! the hottest block. This answers the question the aggregate Fig. 10
//! numbers cannot: *which* instructions pay for divergence, and where a
//! kernel author should look first.

use super::Outcome;
use crate::scale;
use iwc_compaction::{CompactionMode, EngineRegistry};
use iwc_sim::GpuConfig;
use iwc_workloads::catalog;

struct Options {
    workload: String,
    top: usize,
    mode: iwc_compaction::EngineId,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut args = args.iter();
    let workload = args.next().ok_or("missing workload name")?.clone();
    let mut opts = Options {
        workload,
        top: 12,
        mode: iwc_compaction::EngineId::IVY_BRIDGE,
    };
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--top" => opts.top = value()?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => {
                let v = value()?;
                let registry = EngineRegistry::global();
                opts.mode = registry.find(v).ok_or_else(|| {
                    format!("unknown mode {v:?} ({})", registry.labels().join("|"))
                })?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

pub(crate) fn run(args: &[String]) -> Outcome {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: profile <workload> [--top N] [--mode base|ivb|bcc|scc]");
            eprintln!(
                "workloads: {}",
                catalog()
                    .iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            return Outcome::fail();
        }
    };
    let entries = catalog();
    let Some(entry) = entries.iter().find(|e| e.name == opts.workload) else {
        eprintln!("unknown workload {:?}", opts.workload);
        eprintln!(
            "workloads: {}",
            entries.iter().map(|e| e.name).collect::<Vec<_>>().join(" ")
        );
        return Outcome::fail();
    };
    let built = (entry.build)(scale());
    let cfg = GpuConfig::paper_default()
        .with_compaction(opts.mode)
        .with_insn_profile(true);
    let r = match built.run_checked(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", built.name);
            return Outcome::fail();
        }
    };
    crate::telemetry().absorb(&r.telemetry);
    let from = CompactionMode::IvyBridge;
    let to = CompactionMode::Scc;
    let program = &built.launch.program;
    let profile = &r.eu.insn_profile;

    println!(
        "== divergence profile: {} ({} insns, mode {}) ==",
        built.name,
        program.len(),
        r.mode
    );
    println!("{r}\n");

    let hot = profile.hotspots(from, to);
    if hot.is_empty() {
        println!("no compressible instructions: every executed mask is already dense");
    } else {
        println!("hotspots (cycles saved, {from} -> {to}):");
        println!(
            "{:>4} {:>5} {:>9} {:>7} {:>8} {:>7} {:>8}  instruction",
            "rank", "pc", "execs", "skips", "ch/exec", "saved", "of-ivb"
        );
        for (rank, &(pc, saved)) in hot.iter().take(opts.top).enumerate() {
            let s = &profile.insns[pc];
            let ivb = s.cycles.get(from).max(1);
            println!(
                "{:>4} {:>5} {:>9} {:>7} {:>8.1} {:>7} {:>7.1}%  {}",
                rank + 1,
                pc,
                s.execs,
                s.zero_skips,
                s.mean_channels(),
                saved,
                100.0 * saved as f64 / ivb as f64,
                program.insns()[pc]
            );
        }
        if hot.len() > opts.top {
            println!("  ... {} more (use --top)", hot.len() - opts.top);
        }
    }

    // Basic-block rollup: where a kernel author should look first.
    let blocks = profile.by_block(program);
    let mut ranked: Vec<(usize, &iwc_sim::BlockStat)> = blocks.iter().enumerate().collect();
    ranked.sort_by(|a, b| {
        b.1.stat
            .savings(from, to)
            .cmp(&a.1.stat.savings(from, to))
            .then(a.0.cmp(&b.0))
    });
    println!("\nbasic blocks (by cycles saved):");
    println!(
        "{:>4} {:>11} {:>9} {:>9} {:>8} {:>7}",
        "blk", "pc range", "execs", "ivb cyc", "scc cyc", "saved"
    );
    for &(i, b) in ranked.iter().take(opts.top) {
        if b.stat.execs == 0 && b.stat.zero_skips == 0 {
            continue;
        }
        println!(
            "{:>4} {:>5}..{:<5} {:>9} {:>9} {:>8} {:>7}",
            format!("B{i}"),
            b.range.start,
            b.range.end,
            b.stat.execs,
            b.stat.cycles.get(from),
            b.stat.cycles.get(to),
            b.stat.savings(from, to)
        );
    }
    if let Some(&(i, b)) = ranked.first() {
        let saved = b.stat.savings(from, to);
        if saved > 0 {
            println!(
                "\nhottest block: B{i} (pc {}..{}) — SCC would save {saved} execution \
                 cycles here ({:.1}% of the kernel's total saving)",
                b.range.start,
                b.range.end,
                100.0 * saved as f64
                    / blocks
                        .iter()
                        .map(|b| b.stat.savings(from, to))
                        .sum::<u64>()
                        .max(1) as f64
            );
        } else {
            println!("\nhottest block: none — no block saves cycles under {to}");
        }
    }
    Outcome::cells(1)
}
