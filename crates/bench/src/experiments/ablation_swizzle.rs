//! Ablation: swizzle-network reach — distance-limited SCC crossbars (§4.3).
//!
//! SCC's channel swizzling assumes a full intra-warp crossbar in front of
//! the ALUs; §4.3 weighs its wiring cost against BCC's free suppression.
//! This experiment bounds the crossbar to quad distance `k` (a channel in
//! quad *n* may only borrow work from quads within `|m - n| ≤ k`, the
//! [`SccLimited`] engine) and sweeps the trace corpus through the engine
//! registry: `k = 0` can only skip fully-idle quads (BCC-equivalent
//! packing), while `k = 3` already reaches every donor a SIMD16 warp has
//! and matches full SCC — the cheapest network that loses nothing.
//!
//! This is the registry's extensibility proof: the design point exists as
//! one engine impl plus this descriptor, with no simulator, trace, or
//! legacy-binary changes.

use super::Outcome;
use crate::runner;
use crate::{pct, trace_len};
use iwc_compaction::{EngineId, SccLimited};
use iwc_trace::{analyze_corpus_engines, corpus};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== ablation: swizzle-network reach (distance-limited SCC) ==\n");
    let limited: Vec<EngineId> = (0..=3).map(SccLimited::register).collect();
    let mut ids = vec![EngineId::IVY_BRIDGE, EngineId::BCC];
    ids.extend(&limited);
    ids.push(EngineId::SCC);

    // Report columns: EU-cycle reduction vs the IVB baseline for every
    // engine after it, in increasing crossbar reach.
    let cols: Vec<EngineId> = ids[1..].to_vec();
    print!("{:<22} {:>8}", "workload", "eff");
    for &id in &cols {
        print!(" {:>8}", id.label());
    }
    println!();

    let profiles = corpus();
    let reports = analyze_corpus_engines(&profiles, trace_len(), runner::threads(), &ids);
    let cells = reports.len();
    {
        // Fold the corpus-wide engine accounting into the process registry
        // so the bench report carries a telemetry snapshot (DESIGN.md §7.4).
        let mut total = iwc_compaction::EngineTally::new(&ids);
        for report in &reports {
            total.merge(&report.tally);
        }
        let mut snap = iwc_telemetry::TelemetrySnapshot::new();
        snap.set_counter("corpus/traces", cells as u64);
        snap.publish("corpus", &total);
        crate::telemetry().absorb(&snap);
    }

    let mut sums = vec![0.0f64; cols.len()];
    for report in &reports {
        print!(
            "{:<22} {:>8}",
            report.name,
            pct(report.tally.simd_efficiency())
        );
        for (i, &id) in cols.iter().enumerate() {
            let r = report.tally.reduction_vs(id, EngineId::IVY_BRIDGE);
            sums[i] += r;
            print!(" {:>8}", pct(r));
        }
        println!();
    }
    print!("{:<22} {:>8}", "average", "");
    for sum in &sums {
        print!(" {:>8}", pct(sum / cells.max(1) as f64));
    }
    println!();

    println!(
        "\nreading: k = 0 only packs around fully-idle quads, so it tracks BCC; each \
         extra quad of reach closes part of the gap to full SCC, and k = 3 (every \
         donor a SIMD16 warp can have) matches it exactly — the full crossbar of \
         §4.3 buys nothing beyond distance-3 routing on 4-byte types."
    );
    Outcome::cells(cells)
}
