//! Corpus-pack analysis throughput: streams the expanded synthetic corpus
//! out of its `.iwcc` pack through the sharded bounded-memory analyzer,
//! records traces/s and a peak-RSS proxy into `results/BENCH_corpus.json`
//! (schema 2, runs-trajectory carryover like `BENCH_sim.json`), and
//! answers repeated runs from the content-addressed results cache.
//!
//! ```console
//! iwc corpusbench [count] [nocache]
//! ```
//!
//! Stdout carries only the deterministic analysis block — per-trace SIMD
//! efficiency and BCC/SCC reductions plus the corpus aggregate — so the
//! output is byte-identical whatever the thread count and whether the
//! run was answered from cache (the CI `corpus-smoke` job diffs stdout
//! at 1 vs 4 shards). Wall-clock, RSS, and cache accounting go to stderr
//! and the JSON report.
//!
//! The cache key is (pack content hash × engine set × fingerprint):
//! re-running on an unchanged pack hits whatever thread count produced
//! the cached payload (results are shard-invariant by construction);
//! regenerating the pack with different count/len changes the pack hash
//! and misses. Pass `nocache` to force a fresh analysis. Cache traffic is
//! published as `corpus/results_cache/{hits,misses}` counters.

use super::Outcome;
use crate::runner::{parse_run_line, results_dir, threads, RunRecord};
use iwc_compaction::CompactionMode;
use iwc_trace::pack::CorpusPack;
use iwc_trace::synth::DEFAULT_EXPANDED_TRACES;
use iwc_trace::{analyze_pack_file, corpus_snapshot, store, ResultsCache, TraceReport};
use std::path::PathBuf;
use std::time::Instant;

/// Version tag of the cached-payload format: bump when the stdout block
/// rendered by [`render_report`] changes shape.
const CACHE_FINGERPRINT: &str = "corpusbench/v1";

/// Peak resident-set proxy (`VmHWM` from `/proc/self/status`), in KiB.
/// Linux only; elsewhere the report records 0.
pub(crate) fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Ensures the default pack exists with the requested shape, regenerating
/// it when absent or stale. Returns the pack path.
///
/// Regeneration writes run-length-encoded payloads: never larger than
/// plain (lone records stay 6-byte items), ~1.2× smaller on the
/// jittery synthetic corpus, and collapsing entirely on coherent
/// traces. Content hashes (and therefore cache keys) are payload-
/// encoding-independent, and an existing plain pack of the right shape
/// is used as-is — CI diffs corpusbench stdout across both encodings.
fn ensure_pack(count: usize, len: usize) -> Result<PathBuf, String> {
    let path = store::default_pack_path();
    if let Ok(pack) = CorpusPack::open_path(&path) {
        let fresh = pack.len() == count
            && pack
                .entries()
                .first()
                .is_none_or(|e| e.records == len as u64);
        if fresh {
            return Ok(path);
        }
        eprintln!(
            "[corpusbench] pack at {} is stale ({} traces); regenerating",
            path.display(),
            pack.len()
        );
    }
    let n = super::pack_tool::generate(&path, count, len, true)?;
    eprintln!(
        "[corpusbench] generated {n}-trace pack at {}",
        path.display()
    );
    Ok(path)
}

/// The deterministic stdout block: per-trace analysis lines plus the
/// corpus aggregate. This exact string is what the results cache stores.
fn render_report(reports: &[TraceReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== Corpus pack analysis: {} traces ==\n\n",
        reports.len()
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<32} eff {:>5.1}%  bcc {:>5.1}%  scc {:>5.1}%\n",
            r.name,
            100.0 * r.simd_efficiency(),
            100.0 * r.reduction(CompactionMode::Bcc),
            100.0 * r.reduction(CompactionMode::Scc),
        ));
    }
    let snap = corpus_snapshot(reports);
    let mut total = iwc_compaction::CompactionTally::new();
    for r in reports {
        total.merge(&r.tally);
    }
    out.push_str(&format!(
        "\ncorpus: {} instructions, efficiency {:.1}%, bcc {:.1}%, scc {:.1}%\n",
        snap.counter("corpus/instructions").unwrap_or(0),
        100.0 * total.simd_efficiency(),
        100.0 * total.reduction_vs_ivb(CompactionMode::Bcc),
        100.0 * total.reduction_vs_ivb(CompactionMode::Scc),
    ));
    out
}

/// Run lines carried over from the previous report; same-shaped runs
/// (threads and cells both equal) are superseded by the current run.
fn prior_runs(text: &str, current: &RunRecord) -> Vec<RunRecord> {
    let mut runs: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
    runs.retain(|r| (r.threads, r.cells) != (current.threads, current.cells));
    runs
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    traces: usize,
    records: u64,
    pack_hash: u64,
    wall_ms: f64,
    traces_per_s: f64,
    cached: bool,
    cache: (u64, u64),
    runs: &[RunRecord],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"corpus\",\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"threads\": {},\n", threads()));
    out.push_str(&format!(
        "  \"corpus\": {{ \"traces\": {traces}, \"records\": {records}, \
         \"pack_hash\": \"{pack_hash:#018x}\" }},\n"
    ));
    out.push_str(&format!("  \"wall_ms\": {wall_ms:.2},\n"));
    out.push_str(&format!("  \"traces_per_s\": {traces_per_s:.1},\n"));
    out.push_str(&format!("  \"peak_rss_kb\": {},\n", peak_rss_kb()));
    out.push_str(&format!(
        "  \"results_cache\": {{ \"answered_from_cache\": {cached}, \
         \"hits\": {}, \"misses\": {} }},\n",
        cache.0, cache.1
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"wall_ms\": {:.2}, \"cells\": {} }}{comma}\n",
            r.threads, r.wall_ms, r.cells
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

pub(crate) fn run(args: &[String]) -> Outcome {
    let use_cache = !args.iter().any(|a| a == "nocache");
    let count = args
        .iter()
        .find_map(|a| a.parse().ok())
        .unwrap_or(DEFAULT_EXPANDED_TRACES);
    let len = crate::trace_len();

    let path = match ensure_pack(count, len) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[corpusbench] pack generation failed: {e}");
            return Outcome::fail();
        }
    };
    let pack = match CorpusPack::open_path(&path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[corpusbench] open failed: {e}");
            return Outcome::fail();
        }
    };
    let traces = pack.len();
    let records: u64 = pack.entries().iter().map(|e| e.records).sum();
    let pack_hash = pack.content_hash();
    drop(pack);

    // The engine set behind TraceReport is the four canonical engines;
    // key the cache on their labels so an engine-set change misses.
    let engine_labels: Vec<String> = iwc_compaction::EngineId::CANONICAL
        .iter()
        .map(|id| id.label())
        .collect();
    let cache = ResultsCache::open_default();
    let key = ResultsCache::key(pack_hash, &engine_labels, CACHE_FINGERPRINT);

    let telemetry = crate::telemetry();
    let start = Instant::now();
    let (report_text, cached) = match cache.load(key).filter(|_| use_cache) {
        Some(payload) => {
            telemetry.counter("corpus/results_cache/hits").add(1);
            (payload, true)
        }
        None => {
            telemetry.counter("corpus/results_cache/misses").add(1);
            let reports = match analyze_pack_file(&path, threads()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("[corpusbench] analysis failed: {e}");
                    return Outcome::fail();
                }
            };
            let text = render_report(&reports);
            if use_cache {
                if let Err(e) = cache.store(key, &text) {
                    eprintln!("[corpusbench] warning: could not store cache entry: {e}");
                }
            }
            (text, false)
        }
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print!("{report_text}");

    #[allow(clippy::cast_precision_loss)]
    let traces_per_s = if wall_ms > 0.0 {
        traces as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };

    let record = RunRecord {
        threads: threads(),
        wall_ms,
        cells: traces,
    };
    let report_path = results_dir().join("BENCH_corpus.json");
    let mut runs = prior_runs(
        &std::fs::read_to_string(&report_path).unwrap_or_default(),
        &record,
    );
    runs.push(record);
    runs.sort_by_key(|r| (r.cells, r.threads));

    let snap = telemetry.snapshot();
    let hits = snap.counter("corpus/results_cache/hits").unwrap_or(0);
    let misses = snap.counter("corpus/results_cache/misses").unwrap_or(0);
    let json = render_json(
        traces,
        records,
        pack_hash,
        wall_ms,
        traces_per_s,
        cached,
        (hits, misses),
        &runs,
    );
    if let Err(e) =
        std::fs::create_dir_all(results_dir()).and_then(|()| std::fs::write(&report_path, &json))
    {
        eprintln!("warning: could not write {}: {e}", report_path.display());
    }

    eprintln!(
        "[corpusbench] {traces} traces ({records} records) in {wall_ms:.1} ms \
         ({traces_per_s:.0} traces/s), peak RSS {} kB",
        peak_rss_kb()
    );
    eprintln!(
        "[corpusbench] results_cache hits={hits} misses={misses}{} -> {}",
        if cached { " (answered from cache)" } else { "" },
        report_path.display()
    );

    // `IWC_PERF_FLOOR` gates analysis throughput (traces/s) the way it
    // gates simbench's cycles/s: below the floor is a hard failure. A
    // cache-answered run clears any sane floor by construction; the gate
    // bites on fresh analysis.
    if let Some(floor) = super::simbench::perf_floor() {
        if traces_per_s < floor {
            eprintln!(
                "[corpusbench] FAIL: {traces_per_s:.0} traces/s is below \
                 IWC_PERF_FLOOR={floor:.0}"
            );
            return Outcome::fail();
        }
        eprintln!(
            "[corpusbench] perf floor {floor:.0} traces/s cleared ({traces_per_s:.0} traces/s)"
        );
    }
    Outcome::cells(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb() > 0, "VmHWM should parse on Linux");
        }
    }

    #[test]
    fn report_runs_stay_line_parseable_and_carry_over() {
        let runs = vec![
            RunRecord {
                threads: 1,
                wall_ms: 50.0,
                cells: 600,
            },
            RunRecord {
                threads: 4,
                wall_ms: 20.0,
                cells: 600,
            },
        ];
        let text = render_json(600, 1_200_000, 0xabcd, 20.0, 30000.0, false, (0, 1), &runs);
        let parsed: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
        assert_eq!(parsed, runs);
        assert!(text.contains("\"traces_per_s\": 30000.0"), "{text}");
        assert!(
            text.contains("\"pack_hash\": \"0x000000000000abcd\""),
            "{text}"
        );
        assert!(text.contains("\"hits\": 0, \"misses\": 1"), "{text}");

        let current = RunRecord {
            threads: 4,
            wall_ms: 25.0,
            cells: 600,
        };
        let kept = prior_runs(&text, &current);
        assert_eq!(kept.len(), 1, "same-shape run superseded");
        assert_eq!(kept[0].threads, 1);
    }

    #[test]
    fn rendered_report_is_deterministic_for_fixed_reports() {
        let profiles = iwc_trace::corpus();
        let a = iwc_trace::analyze_corpus(&profiles[..3], 500, 1);
        let b = iwc_trace::analyze_corpus(&profiles[..3], 500, 2);
        assert_eq!(render_report(&a), render_report(&b));
        assert!(render_report(&a).contains("corpus:"));
    }
}
