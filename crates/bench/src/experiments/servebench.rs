//! `iwc servebench` — closed-loop load generator for the serve daemon.
//!
//! Boots an in-process daemon on an ephemeral loopback port
//! (`IWC_THREADS` simulation workers) and drives it with the same number
//! of closed-loop HTTP clients, each submitting a fixed per-client mix of
//! catalog workloads. Every response is checked against a direct
//! in-process run — a served result that drifts from the simulator is a
//! failure, not a data point.
//!
//! Stdout carries only the deterministic part (the job mix with its
//! simulated cycles and the agreement verdict), so it is byte-identical
//! across thread counts. Requests/s, latency quantiles, and the decode
//! cache counters go to stderr and `results/BENCH_serve.json` (schema 2,
//! with the same run-trajectory carryover as `BENCH_sim.json`).

use super::Outcome;
use crate::runner::{parse_run_line, results_dir, threads, RunRecord};
use iwc_compaction::EngineId;
use iwc_serve::client;
use iwc_serve::{ServeConfig, Server};
use iwc_sim::GpuConfig;
use iwc_telemetry::Pow2Hist;
use iwc_workloads::catalog;
use std::sync::Mutex;
use std::time::Instant;

/// The per-client job mix: a coherent kernel, a divergent Rodinia-class
/// kernel, a matrix kernel, and a branchy search — enough variety to
/// exercise the decode cache across distinct programs.
const MIX: [&str; 4] = ["VA", "BFS", "MM", "Bsearch"];

/// Rounds through the mix per client; total requests = threads × this.
const ROUNDS_PER_CLIENT: usize = 2;

/// Expected cycles per mix workload, summed over the canonical engines —
/// computed directly in-process; the served responses must agree.
fn direct_cycles() -> Vec<(String, u64)> {
    MIX.iter()
        .map(|name| {
            let built = (catalog()
                .into_iter()
                .find(|e| e.name == *name)
                .unwrap_or_else(|| panic!("{name} not in catalog"))
                .build)(crate::scale());
            let total = EngineId::CANONICAL
                .iter()
                .map(|&engine| {
                    built
                        .run_checked(&GpuConfig::paper_default().with_compaction(engine))
                        .unwrap_or_else(|e| panic!("{name} under {}: {e}", engine.label()))
                        .cycles
                })
                .sum();
            ((*name).to_string(), total)
        })
        .collect()
}

/// Sums the `"cycles":` fields of one serve response body.
fn served_cycles(body: &str) -> u64 {
    let mut total = 0;
    let mut rest = body;
    while let Some(at) = rest.find("\"cycles\":") {
        rest = &rest[at + "\"cycles\":".len()..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        total += rest[..end].trim().parse::<u64>().unwrap_or(0);
        rest = &rest[end..];
    }
    total
}

struct LoadStats {
    requests: usize,
    failures: usize,
    latency_us: Pow2Hist,
}

/// Drives `clients` closed-loop client threads against `addr`; each runs
/// the mix `ROUNDS_PER_CLIENT` times and verifies cycles against
/// `expected`.
fn drive(addr: std::net::SocketAddr, clients: usize, expected: &[(String, u64)]) -> LoadStats {
    let stats = Mutex::new(LoadStats {
        requests: 0,
        failures: 0,
        latency_us: Pow2Hist::new(),
    });
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                for _ in 0..ROUNDS_PER_CLIENT {
                    for (name, want) in expected {
                        let body =
                            format!("{{\"workload\":\"{name}\",\"scale\":{}}}", crate::scale());
                        let started = Instant::now();
                        let resp = client::post(addr, "/v1/jobs", &body);
                        #[allow(clippy::cast_possible_truncation)]
                        let us = started.elapsed().as_micros() as u64;
                        let ok = match &resp {
                            Ok(r) => r.status == 200 && served_cycles(&r.body) == *want,
                            Err(_) => false,
                        };
                        let mut st = stats.lock().expect("stats lock poisoned");
                        st.requests += 1;
                        st.failures += usize::from(!ok);
                        st.latency_us.record(us);
                    }
                }
            });
        }
    });
    stats.into_inner().expect("stats lock poisoned")
}

/// Run lines carried over from the previous report; same-shaped runs
/// (threads and cells both equal) are superseded by the current run.
fn prior_runs(text: &str, current: &RunRecord) -> Vec<RunRecord> {
    let mut runs: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
    runs.retain(|r| (r.threads, r.cells) != (current.threads, current.cells));
    runs
}

#[allow(clippy::cast_precision_loss)]
fn render_json(
    load: &LoadStats,
    wall_ms: f64,
    snap: &iwc_telemetry::TelemetrySnapshot,
    runs: &[RunRecord],
) -> String {
    let rps = if wall_ms > 0.0 {
        load.requests as f64 / (wall_ms / 1e3)
    } else {
        0.0
    };
    let cache = |k: &str| snap.counter(&format!("serve/cache/{k}")).unwrap_or(0);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"serve\",\n");
    out.push_str("  \"schema\": 2,\n");
    out.push_str(&format!("  \"threads\": {},\n", threads()));
    out.push_str(&format!(
        "  \"load\": {{ \"requests\": {}, \"failures\": {}, \"wall_ms\": {wall_ms:.2}, \
         \"requests_per_s\": {rps:.1} }},\n",
        load.requests, load.failures
    ));
    out.push_str(&format!(
        "  \"latency_us\": {{ \"mean\": {:.0}, \"p50_hi\": {}, \"p99_hi\": {} }},\n",
        load.latency_us.mean(),
        load.latency_us.quantile_hi(0.50),
        load.latency_us.quantile_hi(0.99)
    ));
    out.push_str(&format!(
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"decodes\": {} }},\n",
        cache("hits"),
        cache("misses"),
        cache("decodes")
    ));
    let results_cache = |k: &str| {
        snap.counter(&format!("serve/results_cache/{k}"))
            .unwrap_or(0)
    };
    out.push_str(&format!(
        "  \"results_cache\": {{ \"hits\": {}, \"misses\": {} }},\n",
        results_cache("hits"),
        results_cache("misses")
    ));
    // Peak queue/worker occupancy over the load run, from the daemon's
    // live gauges — how close the bench drove the pool to saturation.
    // Rendered only when the daemon published them (schema stays 2: the
    // line fails `parse_run_line`, so trajectory readers are unaffected).
    if let (Some(qp), Some(wp)) = (
        snap.gauge("serve/queue/peak"),
        snap.gauge("serve/workers/peak"),
    ) {
        out.push_str(&format!(
            "  \"gauges\": {{ \"queue_peak\": {qp:.0}, \"workers_peak\": {wp:.0} }},\n"
        ));
    }
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"wall_ms\": {:.2}, \"cells\": {} }}{comma}\n",
            r.threads, r.wall_ms, r.cells
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Serve-path throughput: closed-loop clients against the loopback daemon ==\n");

    let expected = direct_cycles();
    for (name, cycles) in &expected {
        println!(
            "{name:<10} {cycles:>12} cycles over {} engines",
            EngineId::CANONICAL.len()
        );
    }

    let clients = threads();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: clients,
        queue_depth: (clients * MIX.len()).max(iwc_serve::DEFAULT_QUEUE_DEPTH),
        // The workload mix never touches the disk results cache; keep the
        // bench hermetic (the counters still render, pinned at zero).
        results_cache: None,
        // A loaded debug-build daemon exceeds any sane slow threshold on
        // every job; the slow-request log is the daemon's concern, not
        // the load generator's.
        slow_ms: 0,
    };
    let server = match Server::bind(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("servebench: cannot bind loopback: {e}");
            return Outcome::fail();
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("servebench: no bound address: {e}");
            return Outcome::fail();
        }
    };
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run());

    let started = Instant::now();
    let load = drive(addr, clients, &expected);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let snap = handle.stats();
    let _ = client::post(addr, "/shutdown", "");
    handle.shutdown();
    let drained = matches!(daemon.join(), Ok(Ok(())));

    println!(
        "\n{} mix workloads x {} engines: served cycles {}",
        MIX.len(),
        EngineId::CANONICAL.len(),
        if load.failures == 0 {
            "agree"
        } else {
            "DISAGREE"
        }
    );
    println!(
        "graceful drain: {}",
        if drained { "clean" } else { "FAILED" }
    );

    let record = RunRecord {
        threads: threads(),
        wall_ms,
        cells: load.requests,
    };
    let path = results_dir().join("BENCH_serve.json");
    let mut runs = prior_runs(&std::fs::read_to_string(&path).unwrap_or_default(), &record);
    runs.push(record);
    runs.sort_by_key(|r| (r.cells, r.threads));

    let json = render_json(&load, wall_ms, &snap, &runs);
    if let Err(e) =
        std::fs::create_dir_all(results_dir()).and_then(|()| std::fs::write(&path, &json))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    #[allow(clippy::cast_precision_loss)]
    let rps = load.requests as f64 / (wall_ms / 1e3).max(1e-9);
    eprintln!(
        "[servebench] {} requests in {wall_ms:.1} ms ({rps:.1} req/s), \
         p50 <= {} us, p99 <= {} us",
        load.requests,
        load.latency_us.quantile_hi(0.50),
        load.latency_us.quantile_hi(0.99)
    );
    eprintln!(
        "[servebench] cache: {} hits / {} misses / {} decodes, \
         results_cache: {} hits / {} misses -> {}",
        snap.counter("serve/cache/hits").unwrap_or(0),
        snap.counter("serve/cache/misses").unwrap_or(0),
        snap.counter("serve/cache/decodes").unwrap_or(0),
        snap.counter("serve/results_cache/hits").unwrap_or(0),
        snap.counter("serve/results_cache/misses").unwrap_or(0),
        path.display()
    );

    if load.failures == 0 && drained {
        Outcome::cells(load.requests)
    } else {
        Outcome::fail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_cycles_sums_all_engines() {
        let body =
            "{\"results\":[{\"engine\":\"base\",\"cycles\":10,\"telemetry\":{\"sim/cycles\":10}},\
                    {\"engine\":\"scc\",\"cycles\":7}]}";
        // Telemetry counters named "cycles" must not double-count: only
        // `"cycles":` fields are summed, and the telemetry snapshot nests
        // them under prefixed names like "sim/cycles".
        assert_eq!(served_cycles(body), 17);
    }

    #[test]
    fn report_runs_stay_line_parseable() {
        let load = LoadStats {
            requests: 16,
            failures: 0,
            latency_us: Pow2Hist::new(),
        };
        let runs = vec![RunRecord {
            threads: 2,
            wall_ms: 125.0,
            cells: 16,
        }];
        let text = render_json(
            &load,
            125.0,
            &iwc_telemetry::TelemetrySnapshot::new(),
            &runs,
        );
        let parsed: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
        assert_eq!(parsed, runs);
        assert!(text.contains("\"requests_per_s\": 128.0"), "{text}");
        assert!(text.contains("\"name\": \"serve\""));
        assert!(
            text.contains("\"results_cache\": { \"hits\": 0, \"misses\": 0 }"),
            "{text}"
        );
        // An empty snapshot publishes no gauges, so the line is absent...
        assert!(!text.contains("\"gauges\""), "{text}");

        // ...and a daemon snapshot with live peaks renders them without
        // disturbing the run-line trajectory readers.
        let mut snap = iwc_telemetry::TelemetrySnapshot::new();
        snap.set_gauge("serve/queue/peak", 3.0);
        snap.set_gauge("serve/workers/peak", 2.0);
        let text = render_json(&load, 125.0, &snap, &runs);
        assert!(
            text.contains("\"gauges\": { \"queue_peak\": 3, \"workers_peak\": 2 }"),
            "{text}"
        );
        let parsed: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
        assert_eq!(parsed, runs);
    }

    #[test]
    fn prior_runs_supersede_same_shape() {
        let current = RunRecord {
            threads: 2,
            wall_ms: 100.0,
            cells: 16,
        };
        let text = "  \"runs\": [\n\
             { \"threads\": 2, \"wall_ms\": 999.0, \"cells\": 16 },\n\
             { \"threads\": 4, \"wall_ms\": 50.0, \"cells\": 32 }\n  ]";
        let runs = prior_runs(text, &current);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].cells, 32);
    }
}
