//! Table 2: Ivy Bridge optimization, BCC, and SCC benefit for nested
//! divergent branches (levels L1–L4).
//!
//! Two methodologies, as in the paper: the analytic cycle model applied to
//! the exact leaf-path masks, and GPGenSim-style simulation of the nested
//! micro-benchmark kernel.

use super::Outcome;
use crate::runner::parallel_map;
use crate::{pct, print_config, run_mode, scale};
use iwc_compaction::{execution_cycles, CompactionMode, EngineId};
use iwc_isa::{DataType, ExecMask};
use iwc_sim::GpuConfig;
use iwc_workloads::micro::nested_branches;

/// The leaf execution masks of the nested-branch benchmark at `level`:
/// every value of the low `level` bits of the lane id selects one path.
fn leaf_masks(level: u32) -> Vec<ExecMask> {
    let paths = 1u32 << level;
    (0..paths)
        .map(|k| {
            let mut bits = 0u32;
            for lane in 0..16 {
                if lane & (paths - 1) == k {
                    bits |= 1 << lane;
                }
            }
            ExecMask::new(bits, 16)
        })
        .collect()
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Table 2: nested-branch benefit of IVB / BCC / SCC ==\n");
    println!("-- analytic cycle model over the leaf-path masks --");
    println!(
        "{:<6} {:<28} {:>12} {:>12} {:>12}",
        "level", "example masks", "IVB benefit", "BCC add'l", "SCC add'l"
    );
    for level in 1..=4u32 {
        let masks = leaf_masks(level);
        let base: u64 = masks
            .iter()
            .map(|&m| u64::from(execution_cycles(m, DataType::F, CompactionMode::Baseline)))
            .sum();
        let cyc = |mode| -> u64 {
            masks
                .iter()
                .map(|&m| u64::from(execution_cycles(m, DataType::F, mode)))
                .sum()
        };
        let ivb = cyc(CompactionMode::IvyBridge);
        let bcc = cyc(CompactionMode::Bcc);
        let scc = cyc(CompactionMode::Scc);
        let rel = |saved: u64| saved as f64 / base as f64;
        let examples = match level {
            1 => "5555, AAAA",
            2 => "1111, 4444, 8888, 2222",
            3 => "0101, 1010, ... (8 paths)",
            _ => "0001 .. 8000 (16 paths)",
        };
        println!(
            "L{:<5} {:<28} {:>12} {:>12} {:>12}",
            level,
            examples,
            pct(rel(base - ivb)),
            pct(rel(ivb - bcc)),
            pct(rel(bcc - scc)),
        );
    }
    println!(
        "\npaper Table 2: L1 -> SCC 50% | L2 -> SCC 75% | L3 -> BCC 50% + SCC 25% | \
         L4 -> IVB 50% + BCC 25%"
    );

    println!("\n-- simulation of the nested micro-benchmark kernel --");
    print_config(&GpuConfig::paper_default());
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>14}",
        "level", "base cyc", "ivb cyc", "bcc cyc", "scc cyc"
    );
    let levels = [1u32, 2, 3, 4];
    let rows = parallel_map(&levels, |&level| {
        let built = nested_branches(level, scale());
        // Sweep in the registry's documented canonical order (weakest to
        // strongest), which the column headers above assume.
        let cycles: Vec<u64> = EngineId::CANONICAL
            .iter()
            .map(|&id| run_mode(&built, id).cycles)
            .collect();
        (level, cycles)
    });
    for (level, cycles) in rows {
        println!(
            "L{:<5} {:>12} {:>12} {:>12} {:>14}",
            level, cycles[0], cycles[1], cycles[2], cycles[3]
        );
    }
    Outcome::cells(levels.len())
}
