//! §4.3 / Fig. 5: register-file organization study — relative area of the
//! baseline, BCC, SCC, and inter-warp (8-banked per-lane) register files.
//!
//! The paper's CACTI 5.x result: BCC costs ~10 % area over the baseline
//! 256-bit file; the per-lane-addressable file required by inter-warp
//! compaction costs > 40 %. Our analytic proxy reproduces the ordering.

use super::Outcome;
use iwc_compaction::{RfModel, RfOrganization};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== Fig. 5 / §4.3: register-file organizations ==\n");
    for org in [
        RfOrganization::Baseline,
        RfOrganization::Bcc,
        RfOrganization::Scc,
        RfOrganization::InterWarp,
    ] {
        let m = RfModel::new(org);
        println!("{m}");
    }
    println!("\npaper (CACTI 5.x, 32nm): BCC ≈ +10% area, inter-warp > +40%");
    let bcc = RfModel::new(RfOrganization::Bcc);
    println!(
        "\noperand fetch energy (arbitrary units): full 256b fetch {:.0}, \
         BCC half fetch {:.0} (suppressed-quartile savings, §4.1)",
        bcc.access_energy(256),
        bcc.access_energy(128)
    );
    Outcome::done()
}
