//! Ablation: data-type width vs compaction benefit (§4.1).
//!
//! "Benefits may be higher for wider datatypes (doubles and long integers)
//! that take more cycles through the execution pipe, and conversely,
//! benefit may be lower for narrow datatypes (half float / short)." The
//! same divergent mask stream is costed at every element width: byte
//! streams barely compress (a dead wave needs 16 disabled contiguous
//! channels) while double streams compress at pair granularity.

use super::Outcome;
use crate::pct;
use iwc_compaction::{waves_typed, CompactionMode};
use iwc_isa::{DataType, ExecMask};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== ablation: element width vs compaction benefit ==\n");
    // A scattered divergent stream at ~45% density over SIMD16.
    let mut rng = SmallRng::seed_from_u64(5);
    let masks: Vec<ExecMask> = (0..20_000)
        .map(|_| {
            let mut bits = 0u32;
            for ch in 0..16 {
                if rng.gen_bool(0.45) {
                    bits |= 1 << ch;
                }
            }
            ExecMask::new(bits | 1, 16)
        })
        .collect();

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "dtype", "elem/wave", "base waves", "bcc gain", "scc gain"
    );
    for dt in [DataType::Ub, DataType::Hf, DataType::F, DataType::Df] {
        let total = |mode: CompactionMode| -> u64 {
            masks
                .iter()
                .map(|&m| u64::from(waves_typed(m, dt, mode)))
                .sum()
        };
        let base = total(CompactionMode::IvyBridge);
        let bcc = total(CompactionMode::Bcc);
        let scc = total(CompactionMode::Scc);
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>12}",
            dt.to_string(),
            dt.elements_per_wave(),
            base,
            pct(1.0 - bcc as f64 / base as f64),
            pct(1.0 - scc as f64 / base as f64),
        );
    }
    println!(
        "\npaper §4.1: wider datatypes (more waves per instruction) benefit more; \
         narrow datatypes (fewer waves) benefit less."
    );
    Outcome::done()
}
