//! Ablation: SIMD width vs divergence opportunity (§5.4 closing and §7).
//!
//! The paper argues that SIMD efficiency falls with wider warps (NVIDIA 32,
//! AMD 64), so wider architectures gain *more* from intra-warp compaction.
//! We reproduce the trend by running the same per-channel divergence
//! process at widths 8, 16 and 32 and measuring efficiency and BCC/SCC
//! cycle reductions.

use super::Outcome;
use crate::pct;
use iwc_compaction::{CompactionMode, CompactionTally};
use iwc_isa::{DataType, ExecMask};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One divergence process: each channel independently takes the `if` side
/// with probability `p_taken`; both sides execute (the masks are the taken
/// set and its complement), modelling one if/else per instruction pair.
fn run_width(width: u32, p_taken: f64, insns: usize, seed: u64) -> CompactionTally {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tally = CompactionTally::new();
    for _ in 0..insns {
        let mut bits = 0u32;
        for ch in 0..width {
            if rng.gen_bool(p_taken) {
                bits |= 1 << ch;
            }
        }
        let taken = ExecMask::new(bits, width);
        tally.add(taken, DataType::F);
        tally.add(taken.not(), DataType::F);
    }
    tally
}

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== ablation: SIMD width vs compaction opportunity ==\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "width", "efficiency", "bcc gain", "scc gain", "scc-bcc"
    );
    for width in [8u32, 16, 32] {
        let t = run_width(width, 0.5, 20_000, 7);
        let bcc = t.reduction_vs_ivb(CompactionMode::Bcc);
        let scc = t.reduction_vs_ivb(CompactionMode::Scc);
        println!(
            "SIMD{width:<4} {:>12} {:>12} {:>12} {:>12}",
            pct(t.simd_efficiency()),
            pct(bcc),
            pct(scc),
            pct(scc - bcc)
        );
    }
    println!(
        "\npaper §7: 'One can expect a larger optimization opportunity and potential \
         benefit from applying intra-warp compaction techniques to these other \
         (wider-SIMD) architectures.'"
    );
    println!(
        "note: efficiency of a 50/50 divergent branch is width-independent (~50%), but \
         the probability that a whole quad is idle — BCC's harvest — shrinks with \
         width, while SCC's packing gain stays, widening the SCC-BCC gap."
    );
    Outcome::done()
}
