//! `run_kernel` — assemble a kernel from the `iwc-isa` text dialect and run
//! it on the simulated GPU under any registered compaction engine.
//!
//! ```console
//! iwc run_kernel <file.iwcasm> [--global N] [--wg N] [--mode <label>]
//!                [--dump N] [--timeline N]
//! ```
//!
//! The runner allocates one scratch buffer (1 MiB) and passes its base
//! address as kernel argument 0 (`r3.0:ud`), so kernels can load/store
//! `arg0 + gid*4` style addresses out of the box. After the run it prints
//! the timing/compaction report and the first `--dump` words of the buffer.
//!
//! `--mode` accepts any label in the [`EngineRegistry`] — the four standard
//! engines (`base|ivb|bcc|scc`) plus whatever ablation engines the process
//! registered.

use super::Outcome;
use iwc_compaction::{CompactionMode, EngineId, EngineRegistry};
use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage};

struct Options {
    file: String,
    global: u32,
    wg: u32,
    mode: EngineId,
    dump: u32,
    timeline: u64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut args = args.iter();
    let file = args.next().ok_or("missing kernel file")?.clone();
    let mut opts = Options {
        file,
        global: 256,
        wg: 64,
        mode: EngineId::IVY_BRIDGE,
        dump: 8,
        timeline: 0,
    };
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--global" => opts.global = value()?.parse().map_err(|e| format!("{e}"))?,
            "--wg" => opts.wg = value()?.parse().map_err(|e| format!("{e}"))?,
            "--dump" => opts.dump = value()?.parse().map_err(|e| format!("{e}"))?,
            "--timeline" => opts.timeline = value()?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => {
                let v = value()?;
                let registry = EngineRegistry::global();
                opts.mode = registry.find(v).ok_or_else(|| {
                    format!("unknown mode {v:?} ({})", registry.labels().join("|"))
                })?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

pub(crate) fn run(args: &[String]) -> Outcome {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: run_kernel <file.iwcasm> [--global N] [--wg N] \
                 [--mode base|ivb|bcc|scc] [--dump N] [--timeline N]"
            );
            return Outcome::fail();
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.file);
            return Outcome::fail();
        }
    };
    let program = match iwc_isa::parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return Outcome::fail();
        }
    };
    println!("{program}");

    let mut img = MemoryImage::new(1 << 20);
    let buffer = img.alloc(512 << 10);
    let launch = Launch::new(program, opts.global, opts.wg).with_args(&[buffer]);
    let cfg = GpuConfig::paper_default()
        .with_compaction(opts.mode)
        .with_issue_log(opts.timeline > 0);
    let result = match simulate(&cfg, &launch, &mut img) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return Outcome::fail();
        }
    };
    println!("{result}");
    let t = result.compute_tally();
    println!(
        "EU-cycle reduction potential: bcc {:.1}%, scc {:.1}%",
        100.0 * t.reduction_vs_ivb(CompactionMode::Bcc),
        100.0 * t.reduction_vs_ivb(CompactionMode::Scc)
    );
    if opts.timeline > 0 {
        println!("\nissue timeline (all EUs merged):");
        print!(
            "{}",
            iwc_sim::timeline::render(&result.eu.issue_log, opts.timeline)
        );
    }
    if opts.dump > 0 {
        print!("buffer[0..{}]:", opts.dump);
        for i in 0..opts.dump {
            print!(" {:#x}", img.read_u32(buffer + 4 * i));
        }
        println!();
    }
    Outcome::done()
}
