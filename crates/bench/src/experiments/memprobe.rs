//! Diagnostic: memory-divergence and issue-rate characteristics of the
//! ray-tracing workloads (lines per message, sends, instructions per cycle,
//! data-cluster throughput). Useful when recalibrating Fig. 11.

use super::Outcome;
use iwc_sim::GpuConfig;

pub(crate) fn run(_args: &[String]) -> Outcome {
    println!("== memory-divergence probe (ray tracing) ==");
    for (n, b) in [
        ("RT-AO-BL16", iwc_workloads::raytrace::ao_bl16(1)),
        ("RT-AO-BL8", iwc_workloads::raytrace::ao_bl8(1)),
        ("RT-PR-BL", iwc_workloads::raytrace::primary_bl(1)),
    ] {
        let (r, _) = b.run(&GpuConfig::paper_default()).expect("runs");
        println!(
            "{n}: lines/msg {:.2}, sends {}, cycles {}, issued {}, instr/cyc {:.2}, dc {:.2}",
            r.mem.lines_per_message(),
            r.mem.loads + r.mem.stores,
            r.cycles,
            r.eu.issued,
            r.eu.issued as f64 / r.cycles as f64,
            r.dc_throughput()
        );
    }
    Outcome::done()
}
