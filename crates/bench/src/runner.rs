//! Deterministic parallel fan-out for evaluation cells.
//!
//! The paper's evaluation is a grid of independent *cells* — (workload ×
//! compaction mode × machine config) simulations or (profile × trace)
//! analyses. [`parallel_map`] fans those cells out over a std-only
//! `thread::scope` pool sized by the `IWC_THREADS` environment variable,
//! while keeping the result vector in input order, so harness stdout is
//! byte-identical whatever the thread count (the determinism test in
//! `crates/bench/tests/determinism.rs` enforces this).
//!
//! [`Harness`] wraps a binary's cell sweep with wall-clock timing and
//! appends a machine-readable run record to `results/bench_<name>.json`
//! (schema documented in DESIGN.md), giving the repo a perf trajectory
//! across commits and thread counts. All harness bookkeeping goes to
//! stderr and the results file — never stdout.

use iwc_telemetry::TelemetrySnapshot;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Worker-pool size: `IWC_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism. Malformed values earn a
/// stderr warning and fall back to the default (never silently).
pub fn threads() -> usize {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("IWC_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) | Err(_) => {
                crate::warn_once(
                    "IWC_THREADS",
                    &format!(
                        "warning: ignoring malformed IWC_THREADS={v:?} (want a positive \
                         integer); using {default}"
                    ),
                );
                default
            }
            Ok(n) => n,
        },
        Err(_) => default,
    }
}

/// Maps `f` over `items` on a [`threads`]-sized scoped worker pool,
/// returning results in input order regardless of completion order.
///
/// Work is claimed by atomic index so imbalanced cells (a heavy raytrace
/// next to a trivial microbenchmark) don't idle workers. With one thread —
/// or one item — this degenerates to a plain serial map, bypassing the
/// pool entirely.
///
/// # Panics
///
/// A panicking cell propagates out of the scope, like the serial loop it
/// replaces.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let pool = threads().min(items.len());
    if pool <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every cell produced a result")
        })
        .collect()
}

/// One timed run record inside a `bench_<name>.json` report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunRecord {
    /// Pool size the run used.
    pub threads: usize,
    /// Wall-clock milliseconds for the whole cell sweep.
    pub wall_ms: f64,
    /// Number of cells the sweep ran.
    pub cells: usize,
}

/// Wall-clock scope for one harness binary's cell sweep.
///
/// ```no_run
/// let h = iwc_bench::runner::Harness::begin("table4");
/// // ... parallel_map over the evaluation cells, print rows ...
/// h.finish(26);
/// ```
pub struct Harness {
    name: String,
    threads: usize,
    start: Instant,
}

impl Harness {
    /// Starts timing a sweep named `name` (the `bench_<name>.json` stem).
    pub fn begin(name: &str) -> Self {
        Harness {
            name: name.to_string(),
            threads: threads(),
            start: Instant::now(),
        }
    }

    /// Stops the clock and merges this run into
    /// `results/bench_<name>.json` (directory overridable via
    /// `IWC_RESULTS_DIR`), embedding the process-wide
    /// [`telemetry`](crate::telemetry) snapshot gathered over the sweep's
    /// simulations (schema 2). Failures to write are reported on stderr,
    /// never fatal — perf bookkeeping must not break result generation.
    pub fn finish(self, cells: usize) {
        let wall_ms = self.start.elapsed().as_secs_f64() * 1e3;
        let record = RunRecord {
            threads: self.threads,
            wall_ms,
            cells,
        };
        let path = results_dir().join(format!("bench_{}.json", self.name));
        let mut runs = read_runs(&path);
        runs.retain(|r| r.threads != record.threads);
        runs.push(record);
        runs.sort_by_key(|r| r.threads);
        let mut snapshot = crate::telemetry().snapshot();
        publish_throughput(&mut snapshot, wall_ms);
        let json = render_report(&self.name, &runs, &snapshot);
        if let Err(e) = fs::create_dir_all(results_dir()).and_then(|()| fs::write(&path, json)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        eprintln!(
            "[bench] {}: {} cells on {} thread(s) in {:.1} ms -> {}",
            self.name,
            cells,
            self.threads,
            wall_ms,
            path.display()
        );
    }
}

/// Derives the `sim/throughput` gauge — simulated cycles retired per
/// wall-clock second across the whole sweep — from the `sim/cycles`
/// counter the simulator publishes. The single headline number for "is
/// the interpreter getting faster", tracked across commits by the
/// checked-in `bench_<name>.json` reports.
fn publish_throughput(snapshot: &mut TelemetrySnapshot, wall_ms: f64) {
    if let Some(cycles) = snapshot.counter("sim/cycles") {
        if wall_ms > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            snapshot.set_gauge("sim/throughput", cycles as f64 / (wall_ms / 1e3));
        }
    }
}

pub(crate) fn results_dir() -> PathBuf {
    std::env::var_os("IWC_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Parses the run records back out of a previously written report. The
/// writer puts one run object per line, so a line-oriented scan suffices —
/// there is deliberately no JSON dependency in this workspace.
fn read_runs(path: &std::path::Path) -> Vec<RunRecord> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(parse_run_line).collect()
}

pub(crate) fn parse_run_line(line: &str) -> Option<RunRecord> {
    let mut threads = None;
    let mut wall_ms = None;
    let mut cells = None;
    for field in line
        .trim()
        .trim_start_matches('{')
        .trim_end_matches([',', '}', ' '])
        .split(',')
    {
        let (key, value) = field.split_once(':')?;
        let value = value.trim().trim_end_matches('}').trim();
        match key.trim().trim_matches('"') {
            "threads" => threads = value.parse().ok(),
            "wall_ms" => wall_ms = value.parse().ok(),
            "cells" => cells = value.parse().ok(),
            _ => return None,
        }
    }
    Some(RunRecord {
        threads: threads?,
        wall_ms: wall_ms?,
        cells: cells?,
    })
}

/// Renders a schema-2 report: name, run records (one per line, so
/// [`parse_run_line`] can re-read them), optional speedup, and the
/// telemetry snapshot aggregated over the sweep's simulations. Readers of
/// the schema-1 line format keep working — every added line is one
/// `parse_run_line` rejects.
fn render_report(name: &str, runs: &[RunRecord], telemetry: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"name\": \"{name}\",\n"));
    out.push_str("  \"schema\": 2,\n");
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"threads\": {}, \"wall_ms\": {:.2}, \"cells\": {} }}{comma}\n",
            r.threads, r.wall_ms, r.cells
        ));
    }
    out.push_str("  ]");
    if let Some(speedup) = speedup_vs_single(runs) {
        out.push_str(&format!(",\n  \"speedup_vs_1_thread\": {speedup:.2}"));
    }
    out.push_str(",\n  \"telemetry\": ");
    out.push_str(&telemetry.to_json());
    out.push_str("\n}\n");
    out
}

/// Best multi-thread speedup over the recorded single-thread run, if both
/// sides exist.
fn speedup_vs_single(runs: &[RunRecord]) -> Option<f64> {
    let single = runs.iter().find(|r| r.threads == 1)?.wall_ms;
    let best = runs
        .iter()
        .filter(|r| r.threads > 1)
        .map(|r| r.wall_ms)
        .min_by(f64::total_cmp)?;
    (best > 0.0).then(|| single / best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        // Uneven per-item work to force out-of-order completion.
        let out = parallel_map(&items, |&x| {
            if x % 17 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * x
        });
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn run_line_roundtrip() {
        let r = RunRecord {
            threads: 4,
            wall_ms: 123.45,
            cells: 26,
        };
        let line = format!(
            "    {{ \"threads\": {}, \"wall_ms\": {:.2}, \"cells\": {} }},",
            r.threads, r.wall_ms, r.cells
        );
        assert_eq!(parse_run_line(&line), Some(r));
        assert_eq!(parse_run_line("  \"name\": \"table4\","), None);
        assert_eq!(parse_run_line("{"), None);
    }

    #[test]
    fn report_merges_and_reports_speedup() {
        let runs = vec![
            RunRecord {
                threads: 1,
                wall_ms: 800.0,
                cells: 10,
            },
            RunRecord {
                threads: 4,
                wall_ms: 200.0,
                cells: 10,
            },
        ];
        let text = render_report("demo", &runs, &TelemetrySnapshot::new());
        assert!(text.contains("\"speedup_vs_1_thread\": 4.00"), "{text}");
        let parsed: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
        assert_eq!(parsed, runs);
    }

    #[test]
    fn throughput_gauge_derived_from_cycles_counter() {
        let mut snap = TelemetrySnapshot::new();
        publish_throughput(&mut snap, 50.0);
        assert_eq!(snap.gauge("sim/throughput"), None, "no cycles, no gauge");

        snap.set_counter("sim/cycles", 250_000);
        publish_throughput(&mut snap, 0.0);
        assert_eq!(snap.gauge("sim/throughput"), None, "zero wall time");

        publish_throughput(&mut snap, 50.0);
        // 250k cycles in 50 ms = 5M cycles/s.
        assert_eq!(snap.gauge("sim/throughput"), Some(5.0e6));
    }

    #[test]
    fn report_embeds_telemetry_and_stays_line_compatible() {
        let runs = vec![RunRecord {
            threads: 2,
            wall_ms: 10.0,
            cells: 3,
        }];
        let mut snap = TelemetrySnapshot::new();
        snap.set_counter("eu/issued", 42);
        snap.set_counter("sim/cycles", 1000);
        let mut h = iwc_telemetry::Pow2Hist::new();
        h.record(7);
        h.record(9);
        snap.set_hist("eu/profile/channels", h);

        let text = render_report("demo", &runs, &snap);
        // The whole report is valid JSON with the snapshot embedded.
        let doc = iwc_telemetry::json::parse(&text).expect("schema-2 report parses");
        assert_eq!(
            doc.get("schema")
                .and_then(iwc_telemetry::json::Json::as_num),
            Some(2.0)
        );
        assert_eq!(
            doc.get("telemetry")
                .and_then(|t| t.get("counters"))
                .and_then(|c| c.get("eu/issued"))
                .and_then(iwc_telemetry::json::Json::as_num),
            Some(42.0)
        );
        // Schema-1 line readers still see exactly the run records: the
        // telemetry lines all fail parse_run_line.
        let parsed: Vec<RunRecord> = text.lines().filter_map(parse_run_line).collect();
        assert_eq!(parsed, runs);
    }
}
