//! Thin wrapper delegating to the `run_kernel` entry of the experiment
//! registry — the same code path as `iwc run_kernel`, kept so existing
//! `cargo run -p iwc-bench --bin run_kernel` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("run_kernel", &args)
}
