//! `run_kernel` — assemble a kernel from the `iwc-isa` text dialect and run
//! it on the simulated GPU under any compaction mode.
//!
//! ```console
//! run_kernel <file.iwcasm> [--global N] [--wg N] [--mode base|ivb|bcc|scc]
//!            [--dump N] [--timeline N]
//! ```
//!
//! The runner allocates one scratch buffer (1 MiB) and passes its base
//! address as kernel argument 0 (`r3.0:ud`), so kernels can load/store
//! `arg0 + gid*4` style addresses out of the box. After the run it prints
//! the timing/compaction report and the first `--dump` words of the buffer.

use iwc_compaction::CompactionMode;
use iwc_sim::{simulate, GpuConfig, Launch, MemoryImage};
use std::process::ExitCode;

struct Options {
    file: String,
    global: u32,
    wg: u32,
    mode: CompactionMode,
    dump: u32,
    timeline: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let file = args.next().ok_or("missing kernel file")?;
    let mut opts = Options {
        file,
        global: 256,
        wg: 64,
        mode: CompactionMode::IvyBridge,
        dump: 8,
        timeline: 0,
    };
    while let Some(a) = args.next() {
        let mut value = || args.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--global" => opts.global = value()?.parse().map_err(|e| format!("{e}"))?,
            "--wg" => opts.wg = value()?.parse().map_err(|e| format!("{e}"))?,
            "--dump" => opts.dump = value()?.parse().map_err(|e| format!("{e}"))?,
            "--timeline" => opts.timeline = value()?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => {
                let v = value()?;
                opts.mode = CompactionMode::ALL
                    .into_iter()
                    .find(|m| m.label() == v)
                    .ok_or(format!("unknown mode {v:?} (base|ivb|bcc|scc)"))?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: run_kernel <file.iwcasm> [--global N] [--wg N] \
                 [--mode base|ivb|bcc|scc] [--dump N] [--timeline N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    let program = match iwc_isa::parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    println!("{program}");

    let mut img = MemoryImage::new(1 << 20);
    let buffer = img.alloc(512 << 10);
    let launch = Launch::new(program, opts.global, opts.wg).with_args(&[buffer]);
    let cfg = GpuConfig::paper_default()
        .with_compaction(opts.mode)
        .with_issue_log(opts.timeline > 0);
    let result = match simulate(&cfg, &launch, &mut img) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{result}");
    let t = result.compute_tally();
    println!(
        "EU-cycle reduction potential: bcc {:.1}%, scc {:.1}%",
        100.0 * t.reduction_vs_ivb(CompactionMode::Bcc),
        100.0 * t.reduction_vs_ivb(CompactionMode::Scc)
    );
    if opts.timeline > 0 {
        println!("\nissue timeline (all EUs merged):");
        print!(
            "{}",
            iwc_sim::timeline::render(&result.eu.issue_log, opts.timeline)
        );
    }
    if opts.dump > 0 {
        print!("buffer[0..{}]:", opts.dump);
        for i in 0..opts.dump {
            print!(" {:#x}", img.read_u32(buffer + 4 * i));
        }
        println!();
    }
    ExitCode::SUCCESS
}
