//! Thin wrapper delegating to the `rf_area` entry of the experiment
//! registry — the same code path as `iwc rf_area`, kept so existing
//! `cargo run -p iwc-bench --bin rf_area` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("rf_area", &args)
}
