//! Thin wrapper delegating to the `trace_tool` entry of the experiment
//! registry — the same code path as `iwc trace_tool`, kept so existing
//! `cargo run -p iwc-bench --bin trace_tool` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("trace_tool", &args)
}
