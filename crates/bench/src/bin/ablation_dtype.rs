//! Thin wrapper delegating to the `ablation_dtype` entry of the experiment
//! registry — the same code path as `iwc ablation_dtype`, kept so existing
//! `cargo run -p iwc-bench --bin ablation_dtype` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("ablation_dtype", &args)
}
