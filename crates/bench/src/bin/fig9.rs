//! Thin wrapper delegating to the `fig9` entry of the experiment
//! registry — the same code path as `iwc fig9`, kept so existing
//! `cargo run -p iwc-bench --bin fig9` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("fig9", &args)
}
