//! Thin wrapper delegating to the `fig3` entry of the experiment
//! registry — the same code path as `iwc fig3`, kept so existing
//! `cargo run -p iwc-bench --bin fig3` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("fig3", &args)
}
