//! Thin wrapper delegating to the `ablation_frontend` entry of the experiment
//! registry — the same code path as `iwc ablation_frontend`, kept so existing
//! `cargo run -p iwc-bench --bin ablation_frontend` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("ablation_frontend", &args)
}
