//! Thin wrapper delegating to the `memprobe` entry of the experiment
//! registry — the same code path as `iwc memprobe`, kept so existing
//! `cargo run -p iwc-bench --bin memprobe` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("memprobe", &args)
}
