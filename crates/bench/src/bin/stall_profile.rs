//! Thin wrapper delegating to the `stall_profile` entry of the experiment
//! registry — the same code path as `iwc stall_profile`, kept so existing
//! `cargo run -p iwc-bench --bin stall_profile` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("stall_profile", &args)
}
