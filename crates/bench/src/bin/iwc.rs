//! `iwc` — the unified experiment driver.
//!
//! ```console
//! iwc list                     # enumerate the experiment registry
//! iwc <experiment> [args...]   # run one experiment (e.g. `iwc fig10`)
//! ```
//!
//! Every subcommand dispatches through
//! [`iwc_bench::experiments::EXPERIMENTS`], the same registry the legacy
//! per-experiment binaries delegate to, so `iwc fig10` and `fig10` emit
//! byte-identical stdout.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: iwc <experiment> [args...] | iwc list");
        eprintln!("experiments: see `iwc list`");
        return ExitCode::FAILURE;
    };
    if cmd == "list" {
        iwc_bench::experiments::list();
        return ExitCode::SUCCESS;
    }
    let rest: Vec<String> = args.collect();
    iwc_bench::experiments::dispatch(&cmd, &rest)
}
