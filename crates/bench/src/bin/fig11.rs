//! Thin wrapper delegating to the `fig11` entry of the experiment
//! registry — the same code path as `iwc fig11`, kept so existing
//! `cargo run -p iwc-bench --bin fig11` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("fig11", &args)
}
