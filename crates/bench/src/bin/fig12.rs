//! Fig. 12: Rodinia kernels — reduction in total execution cycles with the
//! 128 KB L3 and with a perfect (infinite) L3, compared with the EU-cycle
//! reduction from BCC/SCC.
//!
//! The paper's finding: memory-latency-bound kernels (BFS) see little
//! wall-clock benefit even from a perfect L3; compute-bound kernels realize
//! most of the EU-cycle gain.

use iwc_bench::{cycle_reduction, pct, print_config, scale};
use iwc_compaction::CompactionMode;
use iwc_sim::GpuConfig;
use iwc_workloads::{rodinia, Built};

fn rodinia_set(scale: u32) -> Vec<Built> {
    vec![
        rodinia::bfs(scale),
        rodinia::hotspot(scale),
        rodinia::lavamd(scale),
        rodinia::needleman_wunsch(scale),
        rodinia::particle_filter(scale),
    ]
}

fn main() {
    println!("== Fig. 12: Rodinia — total vs EU cycle reduction, 128KB vs perfect L3 ==\n");
    print_config(&GpuConfig::paper_default());
    println!(
        "\n{:<16} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "kernel", "bccTot", "sccTot", "bccTotPL3", "sccTotPL3", "bccEU", "sccEU"
    );
    for built in rodinia_set(scale()) {
        let run = |mode: CompactionMode, perfect: bool| {
            let cfg =
                GpuConfig::paper_default().with_compaction(mode).with_perfect_l3(perfect);
            built.run_checked(&cfg).unwrap_or_else(|e| panic!("{e}"))
        };
        let base = run(CompactionMode::IvyBridge, false);
        let bcc = run(CompactionMode::Bcc, false);
        let scc = run(CompactionMode::Scc, false);
        let base_p = run(CompactionMode::IvyBridge, true);
        let bcc_p = run(CompactionMode::Bcc, true);
        let scc_p = run(CompactionMode::Scc, true);
        let t = base.compute_tally();
        println!(
            "{:<16} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9}",
            built.name,
            pct(cycle_reduction(&base, &bcc)),
            pct(cycle_reduction(&base, &scc)),
            pct(cycle_reduction(&base_p, &bcc_p)),
            pct(cycle_reduction(&base_p, &scc_p)),
            pct(t.reduction_vs_ivb(CompactionMode::Bcc)),
            pct(t.reduction_vs_ivb(CompactionMode::Scc)),
        );
    }
    println!(
        "\npaper: EU-cycle savings average 18% (BCC) / 21% (SCC) for this set, but \
         total-time gains are smaller; BFS is memory-bound and gains little even \
         with a perfect L3"
    );
}
