//! Fig. 10: EU execution-cycle reduction of kernels from BCC and SCC, over
//! and above the existing Ivy Bridge optimization, for divergent workloads.
//!
//! Bars stack the BCC reduction and the additional SCC reduction, exactly
//! like the paper's figure.

use iwc_bench::{bar, pct, run_mode, scale, trace_len};
use iwc_compaction::{CompactionMode, CompactionTally};
use iwc_trace::{analyze, corpus};
use iwc_workloads::{catalog, Category};

fn print_row(name: &str, tally: &CompactionTally, src: &str) {
    let bcc = tally.reduction_vs_ivb(CompactionMode::Bcc);
    let scc = tally.reduction_vs_ivb(CompactionMode::Scc);
    println!(
        "{name:<22} bcc {} + scc {} = {}  |{}| [{src}]",
        pct(bcc),
        pct(scc - bcc),
        pct(scc),
        bar(scc / 0.5, 30)
    );
}

fn main() {
    println!(
        "== Fig. 10: EU execution-cycle reduction with BCC & SCC (above IVB opt) ==\n"
    );
    let mut all_bcc = Vec::new();
    let mut all_scc = Vec::new();
    for entry in catalog() {
        if entry.category != Category::Divergent {
            continue;
        }
        let built = (entry.build)(scale());
        let r = run_mode(&built, CompactionMode::IvyBridge);
        let t = r.compute_tally();
        print_row(entry.name, t, "sim");
        all_bcc.push(t.reduction_vs_ivb(CompactionMode::Bcc));
        all_scc.push(t.reduction_vs_ivb(CompactionMode::Scc));
    }
    for profile in corpus() {
        let report = analyze(&profile.generate(trace_len()));
        print_row(profile.name, &report.tally, "trace");
        all_bcc.push(report.reduction(CompactionMode::Bcc));
        all_scc.push(report.reduction(CompactionMode::Scc));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\naverage: bcc {} scc {}   max: bcc {} scc {}",
        pct(avg(&all_bcc)),
        pct(avg(&all_scc)),
        pct(max(&all_bcc)),
        pct(max(&all_scc))
    );
    println!("paper: up to 42% reduction, ~20% average for divergent applications");
}
