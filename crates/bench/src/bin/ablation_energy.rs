//! Thin wrapper delegating to the `ablation_energy` entry of the experiment
//! registry — the same code path as `iwc ablation_energy`, kept so existing
//! `cargo run -p iwc-bench --bin ablation_energy` invocations and scripts work
//! unchanged (with byte-identical stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    iwc_bench::experiments::dispatch("ablation_energy", &args)
}
