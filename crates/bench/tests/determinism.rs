//! End-to-end determinism of the parallel harness: the figure/table
//! binaries must emit byte-identical stdout regardless of `IWC_THREADS`.
//!
//! Harness bookkeeping (the `[bench] ...` line and `results/bench_*.json`)
//! goes to stderr and the results directory only, so stdout is a pure
//! function of the workload suite.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iwc-determinism-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch results dir");
    dir
}

fn run(exe: &str, threads: &str, results: &PathBuf) -> Output {
    let out = Command::new(exe)
        .env("IWC_THREADS", threads)
        .env("IWC_RESULTS_DIR", results)
        .env("IWC_TRACE_LEN", "2000")
        .output()
        .expect("spawn harness binary");
    assert!(
        out.status.success(),
        "{exe} (IWC_THREADS={threads}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn assert_stdout_thread_invariant(exe: &str, tag: &str) {
    let dir = scratch_dir(tag);
    let serial = run(exe, "1", &dir);
    let parallel = run(exe, "8", &dir);
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "{exe} stdout must be byte-identical for IWC_THREADS=1 vs 8"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table2_stdout_is_thread_count_invariant() {
    assert_stdout_thread_invariant(env!("CARGO_BIN_EXE_table2"), "table2");
}

/// The full Table 4 sweep (26 divergent workloads x 7 simulator runs, twice).
/// Too slow for the debug-profile test suite, so it is ignored there; it runs
/// under `cargo test --release` or `cargo test -- --ignored`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the full Table 4 sweep twice; use --release"
)]
fn table4_stdout_is_thread_count_invariant() {
    assert_stdout_thread_invariant(env!("CARGO_BIN_EXE_table4"), "table4");
}
