//! End-to-end determinism of the parallel harness: the figure/table
//! binaries must emit byte-identical stdout regardless of `IWC_THREADS`,
//! and the unified `iwc` driver must emit byte-identical stdout to every
//! legacy per-experiment binary (they share one registry code path; this
//! golden test keeps it that way).
//!
//! Harness bookkeeping (the `[bench] ...` line and `results/bench_*.json`)
//! goes to stderr and the results directory only, so stdout is a pure
//! function of the workload suite.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iwc-determinism-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch results dir");
    dir
}

fn run(exe: &str, threads: &str, results: &PathBuf) -> Output {
    let out = Command::new(exe)
        .env("IWC_THREADS", threads)
        .env("IWC_RESULTS_DIR", results)
        .env("IWC_TRACE_LEN", "2000")
        .output()
        .expect("spawn harness binary");
    assert!(
        out.status.success(),
        "{exe} (IWC_THREADS={threads}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn assert_stdout_thread_invariant(exe: &str, tag: &str) {
    let dir = scratch_dir(tag);
    let serial = run(exe, "1", &dir);
    let parallel = run(exe, "8", &dir);
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "{exe} stdout must be byte-identical for IWC_THREADS=1 vs 8"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn table2_stdout_is_thread_count_invariant() {
    assert_stdout_thread_invariant(env!("CARGO_BIN_EXE_table2"), "table2");
}

/// The full Table 4 sweep (26 divergent workloads x 7 simulator runs, twice).
/// Too slow for the debug-profile test suite, so it is ignored there; it runs
/// under `cargo test --release` or `cargo test -- --ignored`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the full Table 4 sweep twice; use --release"
)]
fn table4_stdout_is_thread_count_invariant() {
    assert_stdout_thread_invariant(env!("CARGO_BIN_EXE_table4"), "table4");
}

/// Runs the legacy binary `exe` and `iwc <name>` under identical knobs and
/// asserts byte-identical stdout — the golden contract of the experiment
/// registry refactor.
fn assert_iwc_matches_legacy(name: &str, exe: &str) {
    let dir = scratch_dir(&format!("iwc-{name}"));
    let legacy = run(exe, "4", &dir);
    let driver = {
        let out = Command::new(env!("CARGO_BIN_EXE_iwc"))
            .arg(name)
            .env("IWC_THREADS", "4")
            .env("IWC_RESULTS_DIR", &dir)
            .env("IWC_TRACE_LEN", "2000")
            .output()
            .expect("spawn iwc driver");
        assert!(
            out.status.success(),
            "iwc {name} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    assert_eq!(
        String::from_utf8_lossy(&legacy.stdout),
        String::from_utf8_lossy(&driver.stdout),
        "`iwc {name}` stdout must be byte-identical to the legacy `{name}` binary"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn iwc_fig8_matches_legacy_binary() {
    assert_iwc_matches_legacy("fig8", env!("CARGO_BIN_EXE_fig8"));
}

#[test]
fn iwc_rf_area_matches_legacy_binary() {
    assert_iwc_matches_legacy("rf_area", env!("CARGO_BIN_EXE_rf_area"));
}

#[test]
fn iwc_ablation_dtype_matches_legacy_binary() {
    assert_iwc_matches_legacy("ablation_dtype", env!("CARGO_BIN_EXE_ablation_dtype"));
}

#[test]
fn iwc_ablation_width_matches_legacy_binary() {
    assert_iwc_matches_legacy("ablation_width", env!("CARGO_BIN_EXE_ablation_width"));
}

#[test]
fn iwc_table2_matches_legacy_binary() {
    assert_iwc_matches_legacy("table2", env!("CARGO_BIN_EXE_table2"));
}

/// Full Fig. 10 sweep (sim + trace corpus) twice — release-profile only,
/// like the Table 4 thread-invariance test above.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs the full Fig. 10 sweep twice; use --release"
)]
fn iwc_fig10_matches_legacy_binary() {
    assert_iwc_matches_legacy("fig10", env!("CARGO_BIN_EXE_fig10"));
}

/// Unknown experiment names fail with a nonzero exit and a hint, without
/// touching stdout.
#[test]
fn iwc_rejects_unknown_experiment() {
    let out = Command::new(env!("CARGO_BIN_EXE_iwc"))
        .arg("fig99")
        .output()
        .expect("spawn iwc driver");
    assert!(!out.status.success());
    assert!(out.stdout.is_empty());
    assert!(String::from_utf8_lossy(&out.stderr).contains("iwc list"));
}
