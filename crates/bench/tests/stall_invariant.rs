//! Suite-wide stall-attribution property: for every workload under every
//! canonical engine, `sum(stall_causes) + issue_cycles == eu_cycles` —
//! each non-issuing EU cycle is charged to exactly one root cause, and the
//! telemetry snapshot agrees with the raw statistics (DESIGN.md §7.2).
//!
//! The simulator debug-asserts this identity per EU per launch, but that
//! check vanishes in release builds; these tests keep it enforced in both
//! profiles. The always-on test covers a representative workload slice;
//! the full catalog sweep is release-gated (`cargo test --release`)
//! because 4 engines x ~50 workloads is minutes of debug-build sim time.

use iwc_compaction::EngineId;
use iwc_sim::{GpuConfig, SimResult};
use iwc_workloads::catalog;

fn check(name: &str, engine: EngineId, cfg: &GpuConfig, r: &SimResult) {
    let ctx = format!("{name} under {engine}");
    assert_eq!(
        r.eu.eu_cycles,
        u64::from(cfg.eus) * r.cycles,
        "{ctx}: every EU must be charged every launch cycle"
    );
    assert_eq!(
        r.eu.issue_cycles + r.eu.stall_causes.total(),
        r.eu.eu_cycles,
        "{ctx}: attribution must cover exactly the non-issue cycles: {:?}",
        r.eu.stall_causes
    );
    assert_eq!(
        r.eu.stall_causes.send_queue_full, 0,
        "{ctx}: the send queue is unbounded in this model"
    );
    assert_eq!(
        r.eu.stall_causes.barrier, 0,
        "{ctx}: barrier release lands in an issue cycle in this model"
    );
    // The embedded snapshot is derived from — and must agree with — the
    // raw stats it will represent in bench reports and `iwc profile`.
    assert_eq!(r.telemetry.counter("sim/cycles"), Some(r.cycles), "{ctx}");
    assert_eq!(
        r.telemetry.counter("eu/cycles"),
        Some(r.eu.eu_cycles),
        "{ctx}"
    );
    assert_eq!(
        r.telemetry.counter("eu/issue_cycles"),
        Some(r.eu.issue_cycles),
        "{ctx}"
    );
    let snap_total: u64 =
        r.eu.stall_causes
            .iter()
            .map(|(cause, _)| {
                r.telemetry
                    .counter(&format!("eu/stall/{}", cause.label()))
                    .unwrap_or_else(|| panic!("{ctx}: snapshot missing eu/stall/{}", cause.label()))
            })
            .sum();
    assert_eq!(snap_total, r.eu.stall_causes.total(), "{ctx}");
}

fn sweep(names: Option<&[&str]>) {
    let entries = catalog();
    let picked: Vec<_> = match names {
        Some(names) => names
            .iter()
            .map(|n| {
                entries
                    .iter()
                    .find(|e| &e.name == n)
                    .unwrap_or_else(|| panic!("workload {n} not in catalog"))
            })
            .collect(),
        None => entries.iter().collect(),
    };
    for entry in picked {
        let built = (entry.build)(1);
        for engine in EngineId::CANONICAL {
            let cfg = GpuConfig::paper_default().with_compaction(engine);
            let r = built
                .run_checked(&cfg)
                .unwrap_or_else(|e| panic!("{} under {engine}: {e}", entry.name));
            check(entry.name, engine, &cfg, &r);
        }
    }
}

/// Representative slice — coherent, branch-divergent, and memory-divergent
/// workloads — under all four canonical engines. Always on.
#[test]
fn stall_attribution_sums_on_representative_workloads() {
    sweep(Some(&["VA", "Bsearch", "BFS"]));
}

/// The whole catalog under all four canonical engines. Release builds
/// only: this is the same grid `fig3` sweeps, minutes of sim in debug.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full catalog x engine grid; run with cargo test --release"
)]
fn stall_attribution_sums_across_the_whole_suite() {
    sweep(None);
}
