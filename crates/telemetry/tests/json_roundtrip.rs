//! Round-trip coverage for snapshot JSON: `to_json` → `json::parse` →
//! `from_json` must reconstruct the snapshot exactly, including the
//! corners the serve and bench paths rely on — gauges, empty histograms,
//! and the extreme counter values 0 and `u64::MAX`.

use iwc_telemetry::{json, Pow2Hist, TelemetrySnapshot};

#[test]
fn roundtrip_with_gauges_empty_hists_and_extremes() {
    let mut snap = TelemetrySnapshot::new();
    snap.set_counter("zero", 0);
    snap.set_counter("max", u64::MAX);
    snap.set_counter("serve/jobs_ok", 12345);
    snap.set_gauge("serve/queue/depth", 0.0);
    snap.set_gauge("serve/workers/utilization", 0.625);
    snap.set_hist("empty", Pow2Hist::new());
    let mut h = Pow2Hist::new();
    h.record(0);
    h.record(1);
    h.record(u64::MAX - 1);
    snap.set_hist("spread", h);

    let text = snap.to_json();
    json::parse(&text).expect("snapshot JSON is well-formed");
    let back = TelemetrySnapshot::from_json(&text).expect("snapshot JSON re-parses");
    assert_eq!(back, snap, "round trip must be exact");

    // The extremes survive the f64 detour: 0 trivially, u64::MAX because
    // its f64 image (2^64) saturates back down on the u64 cast.
    assert_eq!(back.counter("zero"), Some(0));
    assert_eq!(back.counter("max"), Some(u64::MAX));
    assert_eq!(back.hist("empty").map(|h| h.count), Some(0));
    assert_eq!(back.hist("spread").map(|h| h.count), Some(3));
    assert_eq!(back.gauge("serve/workers/utilization"), Some(0.625));
}

#[test]
fn exact_digits_in_rendered_json() {
    let mut snap = TelemetrySnapshot::new();
    snap.set_counter("max", u64::MAX);
    let text = snap.to_json();
    // Counters are rendered as exact integers, never via f64.
    assert!(text.contains(&format!("\"max\": {}", u64::MAX)));
}

#[test]
fn names_needing_escapes_roundtrip() {
    let mut snap = TelemetrySnapshot::new();
    snap.set_counter("weird\"name\\with\nescapes", 7);
    let text = snap.to_json();
    let back = TelemetrySnapshot::from_json(&text).expect("escaped names re-parse");
    assert_eq!(back.counter("weird\"name\\with\nescapes"), Some(7));
}
