//! Std-only validation of the JSON artifacts the repo exports: checked-in
//! `results/bench_*.json` perf reports (schema 2, embedded telemetry
//! snapshot) and any `trace_*.json` Chrome trace-event exports. CI points
//! `IWC_RESULTS_DIR` at a directory freshly produced by `iwc profile` /
//! `iwc trace-export` and re-runs this test against it, so the schema
//! checkers — not an external tool — are the contract for every file the
//! repo publishes.

use std::path::{Path, PathBuf};

/// `IWC_RESULTS_DIR` (resolved against the workspace root when relative),
/// falling back to the checked-in `results/` directory.
fn results_dir() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    match std::env::var_os("IWC_RESULTS_DIR") {
        Some(d) => {
            let p = PathBuf::from(d);
            if p.is_absolute() {
                p
            } else {
                root.join(p)
            }
        }
        None => root.join("results"),
    }
}

fn files_with_prefix(dir: &Path, prefix: &str) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix))
        })
        .collect();
    v.sort();
    v
}

#[test]
fn exported_artifacts_pass_the_schema_checkers() {
    let dir = results_dir();
    assert!(dir.is_dir(), "no results directory at {}", dir.display());

    let reports = files_with_prefix(&dir, "bench_");
    let traces = files_with_prefix(&dir, "trace_");
    assert!(
        !reports.is_empty() || !traces.is_empty(),
        "nothing to validate in {}",
        dir.display()
    );

    for path in &reports {
        let text = std::fs::read_to_string(path).expect("readable report");
        let ctx = path.display();
        let doc = iwc_telemetry::json::parse(&text)
            .unwrap_or_else(|e| panic!("{ctx}: not valid JSON: {e}"));
        assert!(doc.get("name").is_some(), "{ctx}: missing \"name\"");
        assert!(doc.get("runs").is_some(), "{ctx}: missing \"runs\"");
        // Schema 2 embeds the telemetry snapshot; older reports may still
        // be schema 1 (no marker), which stays readable.
        if let Some(schema) = doc
            .get("schema")
            .and_then(iwc_telemetry::json::Json::as_num)
        {
            assert_eq!(schema, 2.0, "{ctx}: unknown schema version");
            let telemetry = doc
                .get("telemetry")
                .unwrap_or_else(|| panic!("{ctx}: schema 2 without \"telemetry\""));
            // Simulation sweeps publish the `sim/…`+`eu/…` tree, trace-only
            // sweeps the `corpus/…` tree — either way the snapshot must
            // carry counters, not an empty stub.
            let has_counters = ["sim/cycles", "corpus/instructions"].iter().any(|k| {
                telemetry
                    .get("counters")
                    .is_some_and(|c| c.get(k).is_some())
            });
            assert!(
                has_counters,
                "{ctx}: telemetry snapshot carries no counters"
            );
        }
    }

    for path in &traces {
        let text = std::fs::read_to_string(path).expect("readable trace");
        let stats = iwc_telemetry::chrome::validate(&text)
            .unwrap_or_else(|e| panic!("{}: invalid Chrome trace: {e}", path.display()));
        assert!(
            stats.slices > 0,
            "{}: a trace export must contain issue slices",
            path.display()
        );
    }

    eprintln!(
        "validated {} bench report(s) and {} trace export(s) in {}",
        reports.len(),
        traces.len(),
        dir.display()
    );
}
