//! Prometheus text exposition (format 0.0.4) for telemetry snapshots.
//!
//! [`render`] turns a [`TelemetrySnapshot`] into the `# TYPE`-annotated
//! plain-text format every Prometheus-compatible scraper understands, and
//! [`validate`] is the matching std-only checker the CI smoke tests run on
//! whatever `/metrics` served — the same emit-and-revalidate discipline as
//! [`chrome`](crate::chrome).
//!
//! # Name mapping
//!
//! Snapshot names are hierarchical and slash-separated; Prometheus names
//! are flat with `[a-zA-Z0-9_:]`. Two rules bridge them:
//!
//! 1. A small table of *label families* splits a known prefix into a metric
//!    plus one label: `eu/stall/front_end` → `iwc_eu_stall{cause="front_end"}`,
//!    `serve/phase_us/decode` → `iwc_serve_phase_us{phase="decode"}`. This
//!    keeps per-cause / per-engine / per-phase series queryable with one
//!    selector instead of N distinct metric names.
//! 2. Everything else maps structurally: `/` becomes `_`, any other byte
//!    outside `[a-zA-Z0-9_:]` becomes `_`, and the result is prefixed
//!    `iwc_` (`serve/cache/hits` → `iwc_serve_cache_hits`).
//!
//! Counters render as `counter`, gauges as `gauge`, and [`Pow2Hist`]s as
//! native Prometheus histograms: cumulative `_bucket{le="..."}` series over
//! the occupied power-of-two bucket bounds, closed by `le="+Inf"`, `_sum`,
//! and `_count`.

use crate::metrics::{bucket_hi, Pow2Hist, HIST_BUCKETS};
use crate::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Hierarchical prefixes that render as one metric family with a label:
/// `(snapshot name prefix, label key)`. The text after the prefix becomes
/// the label value; the prefix (minus its trailing slash) becomes the
/// family name.
const LABEL_FAMILIES: &[(&str, &str)] = &[
    ("eu/stall/", "cause"),
    ("agg/stall/", "cause"),
    ("serve/engine/", "engine"),
    ("serve/phase_us/", "phase"),
];

/// Maps a hierarchical snapshot name to `(family, Some((label_key,
/// label_value)))` under the rules in the module docs.
fn map_name(name: &str) -> (String, Option<(&'static str, String)>) {
    for &(prefix, key) in LABEL_FAMILIES {
        if let Some(rest) = name.strip_prefix(prefix) {
            if !rest.is_empty() {
                let family = sanitize(&prefix[..prefix.len() - 1]);
                return (family, Some((key, rest.to_string())));
            }
        }
    }
    (sanitize(name), None)
}

/// `iwc_`-prefixed structural flattening of a hierarchical name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("iwc_");
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Escapes a label value per the exposition format: `\\`, `\"`, `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// One family's samples, collected before emission so the `# TYPE` header
/// is printed exactly once even when several snapshot names share a family.
#[derive(Default)]
struct Family {
    kind: &'static str,
    lines: Vec<String>,
}

/// Renders `snap` as Prometheus text exposition.
///
/// Output is deterministic: families appear in sorted order and samples
/// within a family in snapshot (sorted-name) order. Gauges are formatted
/// with enough precision to round-trip typical ratios; counters and
/// histogram cells are exact integers.
pub fn render(snap: &TelemetrySnapshot) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut push = |family: String, kind: &'static str, line: String| {
        let f = families.entry(family).or_default();
        // First registrant wins; a kind clash would be a naming bug, and
        // the validator downstream would reject the duplicate TYPE.
        if f.kind.is_empty() {
            f.kind = kind;
        }
        f.lines.push(line);
    };

    for (name, v) in snap.counters() {
        let (family, label) = map_name(name);
        let labels = match &label {
            Some((k, val)) => label_block(&[(k, val.as_str())]),
            None => String::new(),
        };
        push(family.clone(), "counter", format!("{family}{labels} {v}"));
    }
    for (name, v) in snap.gauges() {
        let (family, label) = map_name(name);
        let labels = match &label {
            Some((k, val)) => label_block(&[(k, val.as_str())]),
            None => String::new(),
        };
        push(family.clone(), "gauge", format!("{family}{labels} {v}"));
    }
    for (name, h) in snap.hists() {
        let (family, label) = map_name(name);
        let base = match &label {
            Some((k, val)) => vec![(*k, val.as_str())],
            None => Vec::new(),
        };
        let mut lines = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            // The top bucket's bound is u64::MAX — fold it into +Inf
            // rather than printing a finite bound above every float.
            if i == HIST_BUCKETS - 1 {
                continue;
            }
            let mut labels: Vec<(&str, &str)> = base.clone();
            let le = bucket_hi(i).to_string();
            labels.push(("le", le.as_str()));
            lines.push(format!("{family}_bucket{} {cum}", label_block(&labels)));
        }
        let mut inf = base.clone();
        inf.push(("le", "+Inf"));
        lines.push(format!("{family}_bucket{} {}", label_block(&inf), h.count));
        lines.push(format!("{family}_sum{} {}", label_block(&base), h.sum));
        lines.push(format!("{family}_count{} {}", label_block(&base), h.count));
        for line in lines {
            push(family.clone(), "histogram", line);
        }
    }

    let mut out = String::new();
    for (name, f) in &families {
        let _ = writeln!(out, "# TYPE {name} {}", f.kind);
        for line in &f.lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Checks that `text` is well-formed Prometheus text exposition.
///
/// Enforced invariants (a practical subset of the format spec, strict
/// enough to catch every renderer bug the tests have imagined):
///
/// * every line is a comment, a `# TYPE <name> <counter|gauge|histogram>`
///   declaration, or a sample `name{labels} value`;
/// * metric and label names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// * label values are double-quoted with only `\\`, `\"`, `\n` escapes;
/// * every sample's family was declared by a preceding `# TYPE` line, and
///   no family is declared twice;
/// * sample values parse as finite decimal numbers (or `+Inf` buckets);
/// * histogram series are internally consistent per label set: `_bucket`
///   counts are cumulative (non-decreasing in file order), the `+Inf`
///   bucket exists and equals `_count`;
/// * the text is newline-terminated.
///
/// # Errors
///
/// Returns `"line N: problem"` for the first violation found.
pub fn validate(text: &str) -> Result<(), String> {
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut declared: BTreeMap<String, String> = BTreeMap::new();
    // (family, non-le labels) → (last cumulative bucket, saw +Inf, inf value)
    let mut hist_state: BTreeMap<(String, String), (u64, Option<u64>)> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), u64> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let err = |msg: &str| Err(format!("line {n}: {msg}"));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
                else {
                    return err("malformed TYPE line");
                };
                if !valid_name(name) {
                    return err(&format!("bad metric name {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram") {
                    return err(&format!("unsupported TYPE {kind:?}"));
                }
                if declared
                    .insert(name.to_string(), kind.to_string())
                    .is_some()
                {
                    return err(&format!("duplicate TYPE for {name:?}"));
                }
            }
            continue; // other comments are legal and unchecked
        }

        let (name, labels, value) = split_sample(line).map_err(|m| format!("line {n}: {m}"))?;
        if !valid_name(&name) {
            return err(&format!("bad metric name {name:?}"));
        }
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|f| declared.get(*f).map(String::as_str) == Some("histogram"))
                    .map(str::to_string)
            })
            .unwrap_or_else(|| name.clone());
        let Some(kind) = declared.get(&family) else {
            return err(&format!("sample {name:?} precedes its TYPE declaration"));
        };
        let is_inf = value == "+Inf";
        if !is_inf && !value.parse::<f64>().map(f64::is_finite).unwrap_or(false) {
            return err(&format!("bad sample value {value:?}"));
        }

        if kind == "histogram" && name.ends_with("_bucket") {
            let mut le = None;
            let mut others = Vec::new();
            for (k, v) in &labels {
                if k == "le" {
                    le = Some(v.clone());
                } else {
                    others.push(format!("{k}={v}"));
                }
            }
            let Some(le) = le else {
                return err("histogram bucket lacks an le label");
            };
            if is_inf {
                return err("bucket count must be a number");
            }
            let count = value.parse::<f64>().expect("checked above") as u64;
            let key = (family.clone(), others.join(","));
            let state = hist_state.entry(key).or_insert((0, None));
            if count < state.0 {
                return err("bucket counts must be cumulative");
            }
            state.0 = count;
            if le == "+Inf" {
                state.1 = Some(count);
            }
        } else if kind == "histogram" && name.ends_with("_count") {
            let others: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            hist_counts.insert(
                (family.clone(), others.join(",")),
                value.parse::<f64>().expect("checked above") as u64,
            );
        }
    }

    for ((family, labels), count) in &hist_counts {
        match hist_state.get(&(family.clone(), labels.clone())) {
            Some((_, Some(inf))) if inf == count => {}
            Some((_, Some(inf))) => {
                return Err(format!(
                    "histogram {family}{{{labels}}}: +Inf bucket {inf} != count {count}"
                ));
            }
            _ => {
                return Err(format!("histogram {family}{{{labels}}}: no +Inf bucket"));
            }
        }
    }
    Ok(())
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed sample line: family name, label pairs, and the value text.
type Sample = (String, Vec<(String, String)>, String);

/// Splits a sample line into `(name, labels, value)`.
fn split_sample(line: &str) -> Result<Sample, String> {
    match line.find('{') {
        None => {
            let mut parts = line.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let value = parts.next().ok_or("sample lacks a value")?.trim();
            if value.is_empty() {
                return Err("sample lacks a value".into());
            }
            Ok((name, Vec::new(), value.to_string()))
        }
        Some(open) => {
            let name = &line[..open];
            let rest = &line[open + 1..];
            let close = find_label_close(rest).ok_or("unterminated label block")?;
            let labels = parse_labels(&rest[..close])?;
            let value = rest[close + 1..].trim();
            if value.is_empty() {
                return Err("sample lacks a value".into());
            }
            Ok((name.to_string(), labels, value.to_string()))
        }
    }
}

/// Index of the `}` closing the label block, honoring quoted values.
fn find_label_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'}' if !in_str => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label lacks '='")?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value is not quoted".into());
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err("bad escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        out.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err("expected ',' between labels".into());
        }
    }
    Ok(out)
}

/// Renders a single ad-hoc histogram under `family` (no labels) — handy
/// for tests and tools that have a bare [`Pow2Hist`] rather than a
/// snapshot.
pub fn render_hist(family: &str, h: &Pow2Hist) -> String {
    let mut snap = TelemetrySnapshot::new();
    snap.set_hist(family, *h);
    render(&snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_names_and_label_families() {
        assert_eq!(map_name("serve/cache/hits").0, "iwc_serve_cache_hits");
        let (fam, lbl) = map_name("eu/stall/front_end");
        assert_eq!(fam, "iwc_eu_stall");
        assert_eq!(lbl, Some(("cause", "front_end".to_string())));
        let (fam, lbl) = map_name("serve/phase_us/decode");
        assert_eq!(fam, "iwc_serve_phase_us");
        assert_eq!(lbl, Some(("phase", "decode".to_string())));
        // A bare prefix with no leaf falls back to structural mapping.
        assert_eq!(map_name("eu/stall/").1, None);
        assert_eq!(map_name("weird name!").0, "iwc_weird_name_");
    }

    #[test]
    fn golden_exposition() {
        let mut snap = TelemetrySnapshot::new();
        snap.set_counter("serve/jobs_ok", 3);
        snap.set_counter("eu/stall/front_end", 7);
        snap.set_counter("eu/stall/mem_latency", 9);
        snap.set_gauge("serve/queue/depth", 2.0);
        let mut h = Pow2Hist::new();
        h.record(0);
        h.record(3);
        h.record(3);
        snap.set_hist("serve/phase_us/decode", h);
        let text = render(&snap);
        let expected = "\
# TYPE iwc_eu_stall counter
iwc_eu_stall{cause=\"front_end\"} 7
iwc_eu_stall{cause=\"mem_latency\"} 9
# TYPE iwc_serve_jobs_ok counter
iwc_serve_jobs_ok 3
# TYPE iwc_serve_phase_us histogram
iwc_serve_phase_us_bucket{phase=\"decode\",le=\"0\"} 1
iwc_serve_phase_us_bucket{phase=\"decode\",le=\"3\"} 3
iwc_serve_phase_us_bucket{phase=\"decode\",le=\"+Inf\"} 3
iwc_serve_phase_us_sum{phase=\"decode\"} 6
iwc_serve_phase_us_count{phase=\"decode\"} 3
# TYPE iwc_serve_queue_depth gauge
iwc_serve_queue_depth 2
";
        assert_eq!(text, expected);
        validate(&text).expect("golden output validates");
    }

    #[test]
    fn top_bucket_folds_into_inf() {
        let mut h = Pow2Hist::new();
        h.record(u64::MAX - 1); // lands in the top bucket; sum stays in range
        h.record(1);
        let text = render_hist("serve/job_us", &h);
        assert!(text.contains("iwc_serve_job_us_bucket{le=\"1\"} 1"));
        assert!(text.contains("iwc_serve_job_us_bucket{le=\"+Inf\"} 2"));
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)));
        validate(&text).expect("validates");
    }

    #[test]
    fn label_escaping_round_trips() {
        let mut snap = TelemetrySnapshot::new();
        snap.set_counter("serve/engine/we\"ird\\eng\nine", 1);
        let text = render(&snap);
        assert!(text.contains("engine=\"we\\\"ird\\\\eng\\nine\""));
        validate(&text).expect("escaped labels validate");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let text = render(&TelemetrySnapshot::new());
        assert_eq!(text, "");
        validate(&text).expect("empty exposition is valid");
    }

    #[test]
    fn validator_rejects_malformed() {
        for (bad, why) in [
            ("iwc_x 1\n", "sample before TYPE"),
            ("# TYPE iwc_x counter\niwc_x one\n", "non-numeric value"),
            ("# TYPE iwc_x counter\n# TYPE iwc_x gauge\n", "duplicate TYPE"),
            ("# TYPE iwc_x widget\n", "unsupported kind"),
            ("# TYPE 0bad counter\n", "bad name"),
            ("# TYPE iwc_x counter\niwc_x 1", "missing trailing newline"),
            ("# TYPE iwc_x counter\niwc_x{a=b} 1\n", "unquoted label"),
            (
                "# TYPE iwc_h histogram\niwc_h_bucket{le=\"1\"} 2\niwc_h_bucket{le=\"+Inf\"} 1\niwc_h_sum 1\niwc_h_count 1\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE iwc_h histogram\niwc_h_bucket{le=\"1\"} 1\niwc_h_sum 1\niwc_h_count 1\n",
                "missing +Inf",
            ),
            (
                "# TYPE iwc_h histogram\niwc_h_bucket{le=\"+Inf\"} 2\niwc_h_sum 1\niwc_h_count 1\n",
                "+Inf disagrees with count",
            ),
        ] {
            assert!(validate(bad).is_err(), "{why}: {bad:?}");
        }
    }

    #[test]
    fn renders_live_registry_snapshot() {
        let r = crate::Registry::new();
        r.counter("serve/jobs_ok").add(2);
        r.gauge("serve/workers/busy").set(1.0);
        r.histogram("serve/job_us").record(250);
        let text = render(&r.snapshot());
        validate(&text).expect("registry snapshot renders validly");
        assert!(text.contains("# TYPE iwc_serve_jobs_ok counter"));
        assert!(text.contains("iwc_serve_workers_busy 1"));
        assert!(text.contains("iwc_serve_job_us_count 1"));
    }
}
