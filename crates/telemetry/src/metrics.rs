//! Atomic metric cells and their plain snapshot values.
//!
//! [`Counter`] and [`Histogram`] are the live, thread-safe accumulators the
//! [`Registry`](crate::Registry) hands out; [`Pow2Hist`] is the plain value
//! a histogram snapshots to (and the type instrumented structs embed when
//! they accumulate single-threaded, e.g. the per-instruction divergence
//! profiles of the simulator).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two histogram buckets: bucket 0 holds exact zeros,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so 65 buckets cover the
/// full `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a sample (see [`HIST_BUCKETS`]).
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
pub fn bucket_hi(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A monotonically increasing atomic counter.
///
/// All operations are relaxed: counters are statistics, not
/// synchronization. One increment is a single atomic add, cheap enough to
/// leave in hot paths and to share across the parallel harness workers.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe gauge holding one `f64` (bit-cast into an `AtomicU64`).
///
/// Gauges are point-in-time measurements — queue depth, busy workers,
/// utilization ratios — not additive tallies, so they never flow through
/// [`Registry::absorb`](crate::Registry::absorb). All operations are
/// relaxed, like [`Counter`].
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Creates a gauge reading 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is greater — a running peak (used
    /// for high-water marks like peak queue depth).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A thread-safe histogram with power-of-two buckets.
///
/// Recording is two relaxed atomic adds (bucket + sum); snapshots are
/// *not* atomic across cells, which is fine for statistics gathered at
/// quiescent points (end of a run / end of a sweep).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds a plain histogram's samples (relaxed per-bucket adds) — used
    /// when a worker folds a per-run snapshot into a shared registry cell.
    pub fn absorb(&self, h: &Pow2Hist) {
        for (cell, &n) in self.buckets.iter().zip(h.buckets.iter()) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(h.sum, Ordering::Relaxed);
    }

    /// Point-in-time plain value.
    pub fn snapshot(&self) -> Pow2Hist {
        let mut h = Pow2Hist::new();
        for (i, b) in self.buckets.iter().enumerate() {
            h.buckets[i] = b.load(Ordering::Relaxed);
        }
        h.count = h.buckets.iter().sum();
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }
}

/// A plain (non-atomic) power-of-two-bucket histogram value.
///
/// This is both the snapshot form of [`Histogram`] and the accumulator
/// embedded in single-threaded statistics structs (per-instruction
/// enabled-channel profiles, quad-occupancy profiles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pow2Hist {
    /// Per-bucket sample counts (see [`HIST_BUCKETS`] for the layout).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for Pow2Hist {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Pow2Hist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Adds another histogram's samples.
    pub fn merge(&mut self, other: &Pow2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, lowest first.
    pub fn occupied(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), c))
            .collect()
    }

    /// Smallest value `v` such that at least `q` (0..=1) of the samples fall
    /// in buckets whose upper bound is ≤ the bound of `v`'s bucket — an
    /// upper-bound quantile estimate, exact for single-valued buckets.
    pub fn quantile_hi(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_hi(i);
            }
        }
        bucket_hi(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sets_and_peaks() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0); // lower: no-op
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0); // higher: raises
        assert_eq!(g.get(), 7.0);
        g.set(-3.0); // plain set always overwrites
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn histogram_snapshot_matches_plain() {
        let h = Histogram::new();
        let mut p = Pow2Hist::new();
        for v in [0u64, 1, 1, 3, 16, 255] {
            h.record(v);
            p.record(v);
        }
        assert_eq!(h.snapshot(), p);
        assert_eq!(p.count, 6);
        assert_eq!(p.sum, 276);
    }

    #[test]
    fn merge_and_mean() {
        let mut a = Pow2Hist::new();
        a.record(2);
        let mut b = Pow2Hist::new();
        b.record(4);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.occupied(), vec![(2, 1), (4, 1)]);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Pow2Hist::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(100);
        }
        assert_eq!(h.quantile_hi(0.5), 1);
        assert_eq!(h.quantile_hi(0.99), 127);
        assert_eq!(Pow2Hist::new().quantile_hi(0.5), 0);
    }
}
