//! Request-scoped span contexts for cross-layer phase timing.
//!
//! The serve daemon assigns every accepted job a request id and wants a
//! phase breakdown (parse/queue/decode/simulate/render) without threading
//! a context argument through the simulator's public API — the sim crate
//! must stay byte-identical whether or not a span is watching. The bridge
//! is a **thread-local current span**: the serve worker installs one with
//! [`set_current`] before running a job, instrumented code calls
//! [`time_phase`] around interesting regions, and `time_phase` is a
//! zero-allocation no-op whenever no span is installed (every non-serve
//! caller).
//!
//! Span phase timings are wall-clock and therefore nondeterministic; they
//! live only in the [`SpanContext`] and are *never* written into
//! [`TelemetrySnapshot`](crate::TelemetrySnapshot)s, preserving the serve
//! path's served-bytes-equal-direct-run contract.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A request-scoped context: a process-unique id plus the accumulated
/// `(phase, microseconds)` timings recorded under it.
#[derive(Debug)]
pub struct SpanContext {
    id: u64,
    phases: Mutex<Vec<(String, u64)>>,
}

impl SpanContext {
    /// Creates a span with a fresh process-unique request id.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            id: next_raw_id(),
            phases: Mutex::new(Vec::new()),
        })
    }

    /// The request id in its canonical printable form, `req-<16 hex>`.
    pub fn request_id(&self) -> String {
        format!("req-{:016x}", self.id)
    }

    /// Appends one phase timing (microseconds).
    pub fn record_phase(&self, name: &str, us: u64) {
        self.phases
            .lock()
            .expect("span poisoned")
            .push((name.to_string(), us));
    }

    /// The recorded `(phase, microseconds)` timings, in record order.
    pub fn phases(&self) -> Vec<(String, u64)> {
        self.phases.lock().expect("span poisoned").clone()
    }

    /// Sum of all recorded phase timings in microseconds.
    pub fn total_us(&self) -> u64 {
        self.phases
            .lock()
            .expect("span poisoned")
            .iter()
            .map(|(_, us)| us)
            .sum()
    }
}

/// Process-unique raw request id: a sequence number XORed with a per-boot
/// seed so ids from different daemon runs don't collide in logs.
fn next_raw_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        // FNV-1a over the pid and boot instant — no external entropy
        // source exists in this std-only workspace, and log-scoped
        // uniqueness is all that's needed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(u64::from(std::process::id()));
        mix(std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0));
        // Keep the low bits clear so XORing the sequence number in
        // preserves uniqueness for the first 2^32 requests of a run.
        h << 32
    });
    SEQ.fetch_add(1, Ordering::Relaxed) ^ seed
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<SpanContext>>> = const { RefCell::new(None) };
}

/// Restores the previously installed span when dropped — the RAII half of
/// [`set_current`].
#[derive(Debug)]
pub struct SpanGuard {
    prev: Option<Arc<SpanContext>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `span` as this thread's current span until the returned guard
/// drops. Nested installs restore the outer span on drop.
#[must_use = "dropping the guard immediately uninstalls the span"]
pub fn set_current(span: Arc<SpanContext>) -> SpanGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(span));
    SpanGuard { prev }
}

/// This thread's current span, if one is installed.
pub fn current() -> Option<Arc<SpanContext>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f`, charging its wall time to phase `name` of the current span.
///
/// With no span installed this is just `f()` — one thread-local read on
/// top of the wrapped work, cheap enough to leave in the simulator's
/// decode and launch paths unconditionally.
pub fn time_phase<T>(name: &str, f: impl FnOnce() -> T) -> T {
    match current() {
        None => f(),
        Some(span) => {
            let t = Instant::now();
            let out = f();
            span.record_phase(name, t.elapsed().as_micros() as u64);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_formatted() {
        let a = SpanContext::new();
        let b = SpanContext::new();
        assert_ne!(a.id, b.id);
        let rid = a.request_id();
        assert!(rid.starts_with("req-"));
        assert_eq!(rid.len(), 4 + 16);
        assert!(rid[4..].chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn time_phase_records_only_under_a_span() {
        // No span installed: runs, records nothing anywhere.
        assert_eq!(time_phase("idle", || 7), 7);
        assert!(current().is_none());

        let span = SpanContext::new();
        let guard = set_current(Arc::clone(&span));
        assert_eq!(current().unwrap().request_id(), span.request_id());
        let out = time_phase("decode", || 42);
        assert_eq!(out, 42);
        span.record_phase("queue", 100);
        drop(guard);
        assert!(current().is_none());

        let phases = span.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "decode");
        assert_eq!(phases[1], ("queue".to_string(), 100));
        assert!(span.total_us() >= 100);
    }

    #[test]
    fn nested_spans_restore_outer() {
        let outer = SpanContext::new();
        let inner = SpanContext::new();
        let _g1 = set_current(Arc::clone(&outer));
        {
            let _g2 = set_current(Arc::clone(&inner));
            assert_eq!(current().unwrap().request_id(), inner.request_id());
        }
        assert_eq!(current().unwrap().request_id(), outer.request_id());
    }
}
