//! The hierarchical metric registry and its plain snapshot form.

use crate::metrics::{bucket_of, Counter, Gauge, Histogram, Pow2Hist};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Interns live metric cells by hierarchical, slash-separated name
/// (`"eu/issued"`, `"mem/l3/hits"`, `"agg/stall/mem_latency"`).
///
/// Cells are shared: asking twice for the same name returns the same
/// [`Counter`]/[`Histogram`], so independent workers (e.g. the parallel
/// evaluation harness) accumulate into one process-wide cell with plain
/// relaxed atomics. Lookup takes a mutex, so callers should hold on to the
/// returned `Arc` rather than re-resolving names in hot loops.
///
/// The registry carries an `enabled` flag for call sites that want a single
/// cheap gate around a block of instrumentation; the cells themselves are
/// always safe to touch.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        let r = Self::default();
        r.enabled.store(true, Ordering::Relaxed);
        r
    }

    /// True when instrumentation gated on this registry should run.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns gated instrumentation on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// Registry gauges are for *live* operational readings (queue depth,
    /// busy workers) sampled at [`snapshot`](Self::snapshot) time; like
    /// snapshot gauges they never flow through [`absorb`](Self::absorb),
    /// so nondeterministic values stay out of the additive counter tree.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.hists.lock().expect("registry poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Folds a snapshot into the live cells: counters add, histograms
    /// merge, gauges are deliberately ignored (a point-in-time reading
    /// from one run has no additive meaning process-wide). Addition
    /// commutes, so parallel workers can absorb their per-run snapshots
    /// in any completion order and the final
    /// [`snapshot`](Self::snapshot) is still deterministic.
    pub fn absorb(&self, snap: &TelemetrySnapshot) {
        for (name, v) in snap.counters() {
            self.counter(name).add(v);
        }
        for (name, h) in snap.hists() {
            self.histogram(name).absorb(h);
        }
    }

    /// Point-in-time plain values of every registered cell.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        for (name, c) in self.counters.lock().expect("registry poisoned").iter() {
            snap.set_counter(name, c.get());
        }
        for (name, g) in self.gauges.lock().expect("registry poisoned").iter() {
            snap.set_gauge(name, g.get());
        }
        for (name, h) in self.hists.lock().expect("registry poisoned").iter() {
            snap.set_hist(name, h.snapshot());
        }
        snap
    }
}

/// How a typed statistics struct publishes its fields into a snapshot.
///
/// Implementations turn the ad-hoc fields of `EuStats`, `MemStats`,
/// `CompactionTally`, … into uniformly named counters/histograms under a
/// caller-chosen prefix, making [`TelemetrySnapshot`] the single uniform
/// store behind all the typed accessors.
pub trait Instrument {
    /// Writes this struct's metrics into `snap`, each name prefixed with
    /// `prefix` (no trailing slash; pass `""` for top-level names).
    fn publish(&self, prefix: &str, snap: &mut TelemetrySnapshot);
}

/// Joins a prefix and a metric name with `/`, eliding an empty prefix.
/// Convenience for [`Instrument`] implementations.
pub fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}/{name}")
    }
}

/// A plain, mergeable, comparable point-in-time value set.
///
/// Snapshots are what results carry: `SimResult` embeds one per run, the
/// bench harness embeds an aggregate one per report, and the trace analyzer
/// produces one per corpus. Names are hierarchical (slash-separated) and
/// iteration / JSON output is always name-sorted, so snapshot JSON is
/// byte-deterministic for a given value set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Pow2Hist>,
}

impl TelemetrySnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets counter `name` to `v` (overwriting).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Adds `v` to counter `name` (creating it at 0).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Stores histogram `name` (overwriting).
    pub fn set_hist(&mut self, name: &str, h: Pow2Hist) {
        self.hists.insert(name.to_string(), h);
    }

    /// Sets gauge `name` to `v` (overwriting). Gauges are point-in-time
    /// measurements (rates, ratios) rather than additive tallies — they
    /// never flow through [`Registry::absorb`], so nondeterministic values
    /// like wall-clock rates stay out of the deterministic counter tree.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Counter value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Gauge value, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram value, if present.
    pub fn hist(&self, name: &str) -> Option<&Pow2Hist> {
        self.hists.get(name)
    }

    /// Name-sorted counter iterator.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Name-sorted gauge iterator.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Name-sorted histogram iterator.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Pow2Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics (counters + gauges + histograms).
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// True when no metric is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Publishes `stats` under `prefix` (convenience for [`Instrument`]).
    pub fn publish<I: Instrument + ?Sized>(&mut self, prefix: &str, stats: &I) {
        stats.publish(prefix, self);
    }

    /// Field-wise sum with another snapshot: counters add, histograms
    /// merge; metrics present on one side only are kept as-is.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            self.gauges.insert(name.clone(), v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Deterministic JSON rendering (names sorted, fixed field order):
    ///
    /// ```json
    /// {
    ///   "counters": { "eu/issued": 42 },
    ///   "histograms": {
    ///     "profile/channels": { "count": 2, "sum": 17, "buckets": [[16, 2]] }
    ///   }
    /// }
    /// ```
    ///
    /// `buckets` lists `[lower_bound, count]` pairs for occupied
    /// power-of-two buckets only.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("    \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("      \"{}\": {v}", crate::json::escape(name)));
        }
        out.push_str(if first { "},\n" } else { "\n    },\n" });
        // Gauges are emitted only when present so snapshots without them
        // render byte-identically to the pre-gauge schema.
        if !self.gauges.is_empty() {
            out.push_str("    \"gauges\": {");
            first = true;
            for (name, v) in &self.gauges {
                out.push_str(if first { "\n" } else { ",\n" });
                first = false;
                out.push_str(&format!("      \"{}\": {v:.3}", crate::json::escape(name)));
            }
            out.push_str("\n    },\n");
        }
        out.push_str("    \"histograms\": {");
        first = true;
        for (name, h) in &self.hists {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let buckets: Vec<String> = h
                .occupied()
                .iter()
                .map(|(lo, c)| format!("[{lo}, {c}]"))
                .collect();
            out.push_str(&format!(
                "      \"{}\": {{ \"count\": {}, \"sum\": {}, \"buckets\": [{}] }}",
                crate::json::escape(name),
                h.count,
                h.sum,
                buckets.join(", ")
            ));
        }
        out.push_str(if first { "}\n" } else { "\n    }\n" });
        out.push_str("  }");
        out
    }

    /// Parses the output of [`to_json`](Self::to_json) back into a
    /// snapshot — the inverse used by external consumers of bench reports
    /// and by the round-trip tests.
    ///
    /// The JSON layer holds all numbers as `f64`, so counter and sum
    /// values round-trip exactly only up to 2^53 — plus the two extremes
    /// 0 and `u64::MAX` (whose `f64` image saturates back to `u64::MAX`).
    /// Every value the workspace emits today is far below the lossy range.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a shape that does not match
    /// the snapshot schema.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        use crate::json::{parse, Json};
        let doc = parse(text)?;
        let mut snap = TelemetrySnapshot::new();
        let section = |doc: &Json, key: &str| -> Result<BTreeMap<String, Json>, String> {
            match doc.get(key) {
                None => Ok(BTreeMap::new()),
                Some(Json::Obj(m)) => Ok(m.clone()),
                Some(_) => Err(format!("\"{key}\" is not an object")),
            }
        };
        for (name, v) in section(&doc, "counters")? {
            let n = v
                .as_num()
                .ok_or_else(|| format!("counter {name:?} is not a number"))?;
            snap.set_counter(&name, n as u64);
        }
        for (name, v) in section(&doc, "gauges")? {
            let n = v
                .as_num()
                .ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            snap.set_gauge(&name, n);
        }
        for (name, v) in section(&doc, "histograms")? {
            let num = |key: &str| -> Result<u64, String> {
                v.get(key)
                    .and_then(Json::as_num)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("histogram {name:?} lacks numeric \"{key}\""))
            };
            let mut h = Pow2Hist::new();
            h.count = num("count")?;
            h.sum = num("sum")?;
            let buckets = v
                .get("buckets")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("histogram {name:?} lacks \"buckets\""))?;
            for pair in buckets {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    format!("histogram {name:?}: bucket is not a [lo, count] pair")
                })?;
                let (lo, c) = (pair[0].as_num(), pair[1].as_num());
                let (lo, c) = lo
                    .zip(c)
                    .ok_or_else(|| format!("histogram {name:?}: non-numeric bucket"))?;
                h.buckets[bucket_of(lo as u64)] = c as u64;
            }
            snap.set_hist(&name, h);
        }
        Ok(snap)
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name:<40} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name:<40} {v:.3}")?;
        }
        for (name, h) in &self.hists {
            writeln!(
                f,
                "{name:<40} n={} mean={:.2} p99<={}",
                h.count,
                h.mean(),
                h.quantile_hi(0.99)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_cells() {
        let r = Registry::new();
        let a = r.counter("x/y");
        let b = r.counter("x/y");
        a.add(2);
        b.inc();
        assert_eq!(r.snapshot().counter("x/y"), Some(3));
        assert!(r.enabled());
        r.set_enabled(false);
        assert!(!r.enabled());
    }

    #[test]
    fn absorb_is_order_independent() {
        let mut a = TelemetrySnapshot::new();
        a.set_counter("c", 2);
        let mut ha = Pow2Hist::new();
        ha.record(3);
        a.set_hist("h", ha);
        let mut b = TelemetrySnapshot::new();
        b.set_counter("c", 5);
        let mut hb = Pow2Hist::new();
        hb.record(9);
        b.set_hist("h", hb);

        let r1 = Registry::new();
        r1.absorb(&a);
        r1.absorb(&b);
        let r2 = Registry::new();
        r2.absorb(&b);
        r2.absorb(&a);
        assert_eq!(r1.snapshot(), r2.snapshot());
        assert_eq!(r1.snapshot().counter("c"), Some(7));
        assert_eq!(r1.snapshot().hist("h").unwrap().count, 2);
        assert_eq!(r1.snapshot().hist("h").unwrap().sum, 12);
    }

    #[test]
    fn snapshot_merge_adds() {
        let mut a = TelemetrySnapshot::new();
        a.set_counter("c", 1);
        let mut h = Pow2Hist::new();
        h.record(4);
        a.set_hist("h", h);
        let mut b = a.clone();
        b.add_counter("c", 9);
        b.add_counter("only_b", 5);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(11));
        assert_eq!(a.counter("only_b"), Some(5));
        assert_eq!(a.hist("h").unwrap().count, 2);
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.histogram("h").record(3);
        let snap = r.snapshot();
        let j1 = snap.to_json();
        let j2 = snap.to_json();
        assert_eq!(j1, j2);
        // Names come out sorted, and the result is valid JSON.
        assert!(j1.find("\"a\"").unwrap() < j1.find("\"b\"").unwrap());
        crate::json::parse(&j1).expect("snapshot JSON parses");
    }

    #[test]
    fn empty_snapshot_json_parses() {
        let snap = TelemetrySnapshot::new();
        assert!(snap.is_empty());
        crate::json::parse(&snap.to_json()).expect("empty snapshot JSON parses");
    }

    #[test]
    fn gauges_render_only_when_present() {
        let mut snap = TelemetrySnapshot::new();
        snap.set_counter("c", 1);
        let without = snap.to_json();
        assert!(!without.contains("\"gauges\""));
        snap.set_gauge("sim/throughput", 1234.5);
        assert_eq!(snap.gauge("sim/throughput"), Some(1234.5));
        let with = snap.to_json();
        assert!(with.contains("\"gauges\""));
        assert!(with.contains("\"sim/throughput\": 1234.500"));
        crate::json::parse(&with).expect("gauge JSON parses");
        // Merge overwrites gauges rather than summing them.
        let mut other = TelemetrySnapshot::new();
        other.set_gauge("sim/throughput", 2.0);
        snap.merge(&other);
        assert_eq!(snap.gauge("sim/throughput"), Some(2.0));
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn registry_gauges_snapshot_but_do_not_absorb() {
        let r = Registry::new();
        let g = r.gauge("serve/queue/depth");
        g.set(3.0);
        r.gauge("serve/queue/depth").set_max(5.0);
        assert_eq!(r.snapshot().gauge("serve/queue/depth"), Some(5.0));
        // Absorbing a snapshot with gauges leaves registry gauges alone.
        let mut snap = TelemetrySnapshot::new();
        snap.set_gauge("serve/queue/depth", 99.0);
        snap.set_gauge("other", 1.0);
        r.absorb(&snap);
        let after = r.snapshot();
        assert_eq!(after.gauge("serve/queue/depth"), Some(5.0));
        assert_eq!(after.gauge("other"), None);
    }

    #[test]
    fn from_json_inverts_to_json() {
        let mut snap = TelemetrySnapshot::new();
        snap.set_counter("eu/issued", 42);
        snap.set_gauge("sim/throughput", 1234.5);
        let mut h = Pow2Hist::new();
        h.record(0);
        h.record(7);
        snap.set_hist("profile/channels", h);
        let back = TelemetrySnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
        // Shape errors are reported, not panicked on.
        assert!(TelemetrySnapshot::from_json("not json").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\": {\"x\": \"y\"}}").is_err());
        assert!(TelemetrySnapshot::from_json("{\"counters\": []}").is_err());
    }

    #[test]
    fn join_elides_empty_prefix() {
        assert_eq!(join("", "x"), "x");
        assert_eq!(join("eu", "x"), "eu/x");
    }
}
