//! A minimal std-only JSON parser and string escaper.
//!
//! The workspace is fully offline (no serde_json), but the telemetry layer
//! both *emits* JSON (snapshots, Chrome traces) and must *validate* what it
//! emitted — the CI schema checker for `iwc trace-export` runs on this
//! parser. It accepts strict JSON (RFC 8259) minus some exotica: `\u`
//! escapes are decoded for BMP code points only, and numbers are parsed as
//! `f64`.

use std::collections::BTreeMap;
use std::str::FromStr;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Duplicate keys keep the last value (like most parsers).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message naming the byte offset and problem on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        f64::from_str(text)
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, []], "c": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[2].as_arr(), Some(&[][..]));
        assert!(matches!(v.get("c"), Some(Json::Obj(m)) if m.is_empty()));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_roundtrips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let json = format!("\"{}\"", escape(s));
        assert_eq!(parse(&json).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn unicode_passthrough() {
        let s = "héllo → 世界";
        let json = format!("\"{}\"", escape(s));
        assert_eq!(parse(&json).unwrap(), Json::Str(s.into()));
    }
}
