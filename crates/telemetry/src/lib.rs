//! # iwc-telemetry
//!
//! The observability layer of the IWC workspace: a hierarchical
//! counter/histogram registry, plain-value snapshots that ride along on
//! simulation results and bench reports, and a Chrome trace-event exporter
//! (openable in Perfetto / `chrome://tracing`).
//!
//! Like the `shims/` crates, this crate is **std-only** — the build
//! environment is fully offline, so everything (including the JSON emitted
//! and validated here) is hand-rolled over `std`.
//!
//! # Layers
//!
//! * [`Counter`] / [`Histogram`] — lock-free atomic metric cells. A counter
//!   increment is one relaxed atomic add, so instrumented code stays cheap
//!   even when several harness workers share one cell (the parallel
//!   evaluation runner increments process-wide counters from every thread).
//! * [`Registry`] — interns metric cells by hierarchical slash-separated
//!   name (`"eu/issued"`, `"mem/l3/hits"`) and snapshots them all at once.
//! * [`TelemetrySnapshot`] — the plain (non-atomic) point-in-time value
//!   set: mergeable, comparable, and serializable to deterministic JSON.
//!   Simulation results and bench reports carry these, never live cells.
//! * [`Instrument`] — how typed statistics structs (`EuStats`, `MemStats`,
//!   `CompactionTally`, …) publish their fields into a snapshot, making the
//!   snapshot the single uniform store behind the typed accessors.
//! * [`chrome`] — Chrome trace-event JSON: one track per execution pipe,
//!   one slice per issue event, stall spans as async events, plus a
//!   std-only schema checker built on the [`json`] parser.
//! * [`expo`] — Prometheus text exposition of a snapshot (`GET /metrics`
//!   on the serve daemon) with a matching std-only validator.
//! * [`span`] — request-scoped span contexts: a thread-local current span
//!   plus [`span::time_phase`], letting the serve daemon collect
//!   per-request phase breakdowns without widening the simulator API.
//!
//! # Example
//!
//! ```
//! use iwc_telemetry::{Registry, TelemetrySnapshot};
//!
//! let reg = Registry::new();
//! reg.counter("eu/issued").add(3);
//! reg.histogram("profile/channels").record(5);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("eu/issued"), Some(3));
//! assert!(snap.to_json().contains("\"eu/issued\": 3"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod expo;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, Pow2Hist, HIST_BUCKETS};
pub use registry::{join, Instrument, Registry, TelemetrySnapshot};
pub use span::SpanContext;
