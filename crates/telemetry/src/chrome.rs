//! Chrome trace-event JSON export and its schema checker.
//!
//! The exporter builds the *JSON Array Format* of the Chrome trace-event
//! spec — the dialect Perfetto and `chrome://tracing` both open directly:
//! a top-level object with a `traceEvents` array, where each event carries
//! a phase (`ph`), a process/track id (`pid`/`tid`), and a microsecond
//! timestamp (`ts`; the simulator maps one cycle to one microsecond so
//! Perfetto's time axis reads as cycles).
//!
//! Three event shapes are emitted:
//!
//! * `"M"` metadata — names processes (EUs) and threads (pipes) so tracks
//!   show `"EU0"` / `"fpu"` instead of bare ids.
//! * `"X"` complete slices — one per issue event (`ts` + `dur` in cycles).
//! * `"b"`/`"e"` async spans — stall attribution intervals, paired by `id`.
//!
//! [`validate`] re-parses an exported document with the std-only
//! [`json`] parser and checks the schema; the CI telemetry job
//! runs it over real `iwc trace-export` output.

use crate::json::{self, Json};
use std::fmt::Write as _;

/// One event row destined for the `traceEvents` array.
#[derive(Clone, Debug)]
enum Event {
    /// `ph:"M"` metadata naming a process or thread.
    Meta {
        name: &'static str, // "process_name" | "thread_name"
        pid: u32,
        tid: u32,
        value: String,
    },
    /// `ph:"X"` complete slice.
    Slice {
        name: String,
        cat: String,
        pid: u32,
        tid: u32,
        ts: u64,
        dur: u64,
    },
    /// `ph:"b"` / `ph:"e"` async span pair, flattened to one row here and
    /// expanded to two events at render time.
    Span {
        name: String,
        cat: String,
        pid: u32,
        tid: u32,
        ts: u64,
        dur: u64,
        id: u64,
    },
}

/// Builder for a Chrome trace-event JSON document.
///
/// Events may be added in any order; [`to_json`](Self::to_json) sorts
/// deterministically (metadata first, then by `(pid, tid, ts, name)`), so
/// the same logical trace always renders to identical bytes.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
    next_span_id: u64,
}

impl ChromeTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a process track (e.g. `pid` = EU index, name `"EU0"`).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.events.push(Event::Meta {
            name: "process_name",
            pid,
            tid: 0,
            value: name.to_string(),
        });
    }

    /// Names a thread track within a process (e.g. one per execution pipe).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(Event::Meta {
            name: "thread_name",
            pid,
            tid,
            value: name.to_string(),
        });
    }

    /// Adds a complete slice (`ph:"X"`): one issue event occupying
    /// `[ts, ts+dur)` cycles on track `(pid, tid)`.
    pub fn slice(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts: u64, dur: u64) {
        self.events.push(Event::Slice {
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid,
            ts,
            dur,
        });
    }

    /// Adds an async span (`ph:"b"` + `ph:"e"` pair): a stall interval of
    /// `dur` cycles starting at `ts`. Returns the span id used to pair the
    /// two events.
    pub fn span(&mut self, pid: u32, tid: u32, name: &str, cat: &str, ts: u64, dur: u64) -> u64 {
        let id = self.next_span_id;
        self.next_span_id += 1;
        self.events.push(Event::Span {
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid,
            ts,
            dur,
            id,
        });
        id
    }

    /// Number of logical events added (a span counts once).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace to Chrome trace-event JSON (one event per line,
    /// deterministic ordering).
    pub fn to_json(&self) -> String {
        let mut rows: Vec<(u8, u32, u32, u64, String)> = Vec::with_capacity(self.events.len() + 8);
        for ev in &self.events {
            match ev {
                Event::Meta {
                    name,
                    pid,
                    tid,
                    value,
                } => {
                    rows.push((
                        0,
                        *pid,
                        *tid,
                        0,
                        format!(
                            "{{\"ph\":\"M\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\
                             \"args\":{{\"name\":\"{}\"}}}}",
                            json::escape(value)
                        ),
                    ));
                }
                Event::Slice {
                    name,
                    cat,
                    pid,
                    tid,
                    ts,
                    dur,
                } => {
                    rows.push((
                        1,
                        *pid,
                        *tid,
                        *ts,
                        format!(
                            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\
                             \"tid\":{tid},\"ts\":{ts},\"dur\":{dur}}}",
                            json::escape(name),
                            json::escape(cat)
                        ),
                    ));
                }
                Event::Span {
                    name,
                    cat,
                    pid,
                    tid,
                    ts,
                    dur,
                    id,
                } => {
                    let name = json::escape(name);
                    let cat = json::escape(cat);
                    rows.push((
                        1,
                        *pid,
                        *tid,
                        *ts,
                        format!(
                            "{{\"ph\":\"b\",\"name\":\"{name}\",\"cat\":\"{cat}\",\"pid\":{pid},\
                             \"tid\":{tid},\"ts\":{ts},\"id\":{id}}}"
                        ),
                    ));
                    rows.push((
                        1,
                        *pid,
                        *tid,
                        ts + dur,
                        format!(
                            "{{\"ph\":\"e\",\"name\":\"{name}\",\"cat\":\"{cat}\",\"pid\":{pid},\
                             \"tid\":{tid},\"ts\":{},\"id\":{id}}}",
                            ts + dur
                        ),
                    ));
                }
            }
        }
        rows.sort_by(|a, b| (a.0, a.1, a.2, a.3, &a.4).cmp(&(b.0, b.1, b.2, b.3, &b.4)));
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let _ = write!(out, "  {}", row.4);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Summary statistics [`validate`] returns for a well-formed trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// `ph:"M"` metadata events.
    pub metadata: usize,
    /// `ph:"X"` complete slices.
    pub slices: usize,
    /// `ph:"b"`/`ph:"e"` async events (each side counted).
    pub async_events: usize,
}

/// Validates a Chrome trace-event JSON document against the subset of the
/// schema this crate emits.
///
/// Checks: the document parses; `traceEvents` is an array of objects; every
/// event has a string `ph` of `M`/`X`/`b`/`e`, a string `name`, and numeric
/// `pid`/`tid`; slices carry numeric `ts` and `dur`; async events carry
/// numeric `ts` and an `id`, and every `b` has a matching `e` with the same
/// id (and vice versa).
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" member")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut stats = TraceStats::default();
    let mut open_spans: Vec<u64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: bad or missing {field:?}");
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("pid"))?;
        ev.get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| ctx("tid"))?;
        match ph {
            "M" => {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| ctx("args.name"))?;
                stats.metadata += 1;
            }
            "X" => {
                ev.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("ts"))?;
                ev.get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("dur"))?;
                stats.slices += 1;
            }
            "b" | "e" => {
                ev.get("ts")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("ts"))?;
                let id = ev
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ctx("id"))? as u64;
                if ph == "b" {
                    open_spans.push(id);
                } else {
                    let pos = open_spans
                        .iter()
                        .position(|&open| open == id)
                        .ok_or_else(|| format!("event {i}: \"e\" with unmatched id {id}"))?;
                    open_spans.swap_remove(pos);
                }
                stats.async_events += 1;
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    if let Some(id) = open_spans.first() {
        return Err(format!("async span id {id} opened but never closed"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.name_process(0, "EU0");
        t.name_thread(0, 1, "fpu");
        t.name_thread(0, 2, "em");
        t.slice(0, 1, "add", "issue", 0, 2);
        t.slice(0, 2, "send", "issue", 2, 4);
        t.span(0, 1, "ScoreboardDep", "stall", 2, 3);
        t
    }

    #[test]
    fn export_passes_validation() {
        let j = sample().to_json();
        let stats = validate(&j).expect("sample trace validates");
        assert_eq!(
            stats,
            TraceStats {
                metadata: 3,
                slices: 2,
                async_events: 2,
            }
        );
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate("{\"traceEvents\": 3}").is_err());
        // Missing dur on a slice.
        let bad = r#"{"traceEvents":[{"ph":"X","name":"a","pid":0,"tid":0,"ts":1}]}"#;
        assert!(validate(bad).unwrap_err().contains("dur"));
        // Unbalanced async span.
        let bad = r#"{"traceEvents":[{"ph":"b","name":"s","pid":0,"tid":0,"ts":1,"id":7}]}"#;
        assert!(validate(bad).unwrap_err().contains("never closed"));
        let bad = r#"{"traceEvents":[{"ph":"e","name":"s","pid":0,"tid":0,"ts":1,"id":7}]}"#;
        assert!(validate(bad).unwrap_err().contains("unmatched"));
        // Unknown phase.
        let bad = r#"{"traceEvents":[{"ph":"Q","name":"a","pid":0,"tid":0}]}"#;
        assert!(validate(bad).unwrap_err().contains("unknown ph"));
    }

    #[test]
    fn spans_get_distinct_ids() {
        let mut t = ChromeTrace::new();
        let a = t.span(0, 0, "s", "stall", 0, 1);
        let b = t.span(0, 0, "s", "stall", 5, 1);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        validate(&t.to_json()).unwrap();
    }
}
