//! Assembler round-trip: write a kernel as text, assemble it with
//! `iwc_isa::parse_program`, disassemble it back with `to_asm`, and run it
//! on the simulated GPU.
//!
//! Run with: `cargo run --release --example assemble_and_run`

use intra_warp_compaction::isa::{parse_program, to_asm};
use intra_warp_compaction::sim::{simulate, GpuConfig, Launch, MemoryImage};

const SOURCE: &str = r"
; Collatz step counter: out[gid] = steps for gid+1 to reach 1 (capped).
kernel collatz simd16
    add r6:ud, r1:ud, 1:ud        ; n = gid + 1
    mov r8:ud, 0:ud               ; steps = 0
    do
        ; if n is even: n /= 2, else n = 3n + 1
        and r10:ud, r6:ud, 1:ud
        cmp.eq.f0 r10:ud, 0:ud
        (+f0) if
            shr r6:ud, r6:ud, 1:ud
        else
            mul r6:ud, r6:ud, 3:ud
            add r6:ud, r6:ud, 1:ud
        endif
        add r8:ud, r8:ud, 1:ud
        ; loop while n > 1 and steps < 64
        cmp.gt.f0 r6:ud, 1:ud
        cmp.lt.f1 r8:ud, 64:ud
        (-f1) break
    (+f0) while
    ; out[gid] = steps
    shl r12:ud, r1:ud, 2:ud
    add r12:ud, r12:ud, r3.0:ud
    store.global r12:ud, r8:ud
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(SOURCE)?;
    println!("assembled {} instructions; disassembly:\n", program.len());
    print!("{}", to_asm(&program));

    // The Collatz loop is maximally trip-divergent: neighbors take wildly
    // different step counts.
    let mut img = MemoryImage::new(1 << 16);
    let out = img.alloc(64 * 4);
    let launch = Launch::new(program, 64, 64).with_args(&[out]);
    let result = simulate(&GpuConfig::paper_default(), &launch, &mut img)?;
    println!("\n{result}");

    let steps: Vec<u32> = img.read_u32_slice(out, 16);
    println!("steps(1..=16) = {steps:?}");
    // Spot-check well-known Collatz trajectories (the do/while runs the
    // body at least once, so n=1 walks 1 -> 4 -> 2 -> 1 = 3 steps).
    assert_eq!(steps[0], 3, "1 -> 4 -> 2 -> 1 under do/while");
    assert_eq!(steps[5], 8, "6 -> 3 -> 10 -> 5 -> 16 -> 8 -> 4 -> 2 -> 1");
    assert_eq!(steps[6], 16, "7 takes 16 steps");
    println!(
        "divergent loop: SIMD efficiency {:.1}%, SCC would save {:.1}% of EU cycles",
        100.0 * result.simd_efficiency(),
        100.0
            * result
                .compute_tally()
                .reduction_vs_ivb(intra_warp_compaction::compaction::CompactionMode::Scc)
    );
    Ok(())
}
