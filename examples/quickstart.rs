//! Quickstart: build a divergent kernel with the ISA DSL, run it on the
//! cycle-level GPU simulator under every compaction mode, and print the
//! cycle savings BCC and SCC deliver.
//!
//! Run with: `cargo run --release --example quickstart`

use intra_warp_compaction::compaction::CompactionMode;
use intra_warp_compaction::isa::{CondOp, FlagReg, KernelBuilder, MemSpace, Operand, Predicate};
use intra_warp_compaction::sim::{simulate, GpuConfig, Launch, MemoryImage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Kernel: out[gid] = gid odd ? expensive(gid) : cheap(gid).
    // Odd/even divergence is the 0xAAAA pattern of the paper's Fig. 4(b):
    // BCC cannot compress it, SCC halves it.
    let mut b = KernelBuilder::new("quickstart", 16);
    b.and(Operand::rud(6), Operand::rud(1), Operand::imm_ud(1));
    b.cmp(CondOp::Ne, FlagReg::F0, Operand::rud(6), Operand::imm_ud(0));
    b.mov(Operand::rf(8), Operand::imm_f(1.0));
    b.if_(Predicate::normal(FlagReg::F0));
    for _ in 0..24 {
        b.mad(
            Operand::rf(8),
            Operand::rf(8),
            Operand::imm_f(1.001),
            Operand::imm_f(0.1),
        );
    }
    b.else_();
    b.add(Operand::rf(8), Operand::rf(8), Operand::imm_f(1.0));
    b.end_if();
    // out[gid] = r8
    b.shl(Operand::rud(10), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(10),
        Operand::rud(10),
        Operand::scalar(3, 0, intra_warp_compaction::isa::DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(10), Operand::rf(8));
    let program = b.finish()?;
    println!("{program}");

    let mut baseline = 0u64;
    for mode in CompactionMode::ALL {
        let mut img = MemoryImage::new(1 << 20);
        let out = img.alloc(1024 * 4);
        let launch = Launch::new(program.clone(), 1024, 64).with_args(&[out]);
        let cfg = GpuConfig::paper_default().with_compaction(mode);
        let r = simulate(&cfg, &launch, &mut img)?;
        if mode == CompactionMode::Baseline {
            baseline = r.cycles;
        }
        println!(
            "{mode:>4}: {:>7} cycles ({:>5.1}% vs baseline), SIMD efficiency {:.1}%",
            r.cycles,
            100.0 * (1.0 - r.cycles as f64 / baseline as f64),
            100.0 * r.simd_efficiency()
        );
        // The functional result is identical regardless of mode.
        assert_eq!(
            img.read_f32(out + 4),
            img.read_f32(out + 12),
            "odd lanes agree"
        );
    }
    Ok(())
}
