//! Multi-level BFS on a persistent GPU: the host enqueues one kernel launch
//! per frontier level against warm caches (the command-streamer model of
//! §2.1), and the per-level SIMD efficiency shows how divergence evolves as
//! the frontier grows and shrinks.
//!
//! Run with: `cargo run --release --example multilevel_bfs`

use intra_warp_compaction::compaction::CompactionMode;
use intra_warp_compaction::sim::GpuConfig;
use intra_warp_compaction::workloads::rodinia::bfs_full;

fn main() -> Result<(), String> {
    println!("level   cycles   SIMD eff   L3 hit   scc potential");
    let results = bfs_full(2, &GpuConfig::paper_default())?;
    for (lvl, r) in results.iter().enumerate() {
        println!(
            "{lvl:>5} {:>8} {:>9.1}% {:>7.1}% {:>14.1}%",
            r.cycles,
            100.0 * r.simd_efficiency(),
            100.0 * r.l3_hit_rate,
            100.0 * r.compute_tally().reduction_vs_ivb(CompactionMode::Scc),
        );
    }
    let total: u64 = results.iter().map(|r| r.cycles).sum();
    println!(
        "\n{} levels, {total} total cycles; distances verified against host BFS",
        results.len()
    );
    Ok(())
}
