//! Ray-tracing divergence study: run the primary-ray and ambient-occlusion
//! workloads across scenes and compaction modes, reproducing the headline
//! observations of the paper's Fig. 11 — AO diverges far more than primary
//! rays, SCC beats BCC on scattered masks, and the realized wall-clock gain
//! depends on data-cluster bandwidth.
//!
//! Run with: `cargo run --release --example raytrace_divergence`

use intra_warp_compaction::compaction::CompactionMode;
use intra_warp_compaction::sim::GpuConfig;
use intra_warp_compaction::workloads::raytrace::{ambient_occlusion, primary, SceneKind};

fn main() {
    println!("scene      kernel     eff     bccEU   sccEU   | time gain @DC1 -> @DC2 (scc)");
    for kind in [SceneKind::Al, SceneKind::Bl, SceneKind::Wm] {
        for (label, built) in [
            ("primary", primary(kind, 1)),
            ("ao-simd16", ambient_occlusion(kind, 16, 1)),
        ] {
            let base1 = built
                .run_checked(&GpuConfig::paper_default())
                .expect("baseline run");
            let t = base1.compute_tally();
            let scc1 = built
                .run_checked(&GpuConfig::paper_default().with_compaction(CompactionMode::Scc))
                .expect("scc run");
            let base2 = built
                .run_checked(&GpuConfig::paper_default().with_dc_bandwidth(2.0))
                .expect("dc2 baseline");
            let scc2 = built
                .run_checked(
                    &GpuConfig::paper_default()
                        .with_compaction(CompactionMode::Scc)
                        .with_dc_bandwidth(2.0),
                )
                .expect("dc2 scc");
            println!(
                "{:<10} {:<10} {:>5.1}%  {:>5.1}%  {:>5.1}%  | {:>5.1}% -> {:>5.1}%",
                format!("{kind:?}"),
                label,
                100.0 * base1.simd_efficiency(),
                100.0 * t.reduction_vs_ivb(CompactionMode::Bcc),
                100.0 * t.reduction_vs_ivb(CompactionMode::Scc),
                100.0 * (1.0 - scc1.cycles as f64 / base1.cycles as f64),
                100.0 * (1.0 - scc2.cycles as f64 / base2.cycles as f64),
            );
        }
    }
    println!("\nAO diverges more than primary rays; DC2 realizes more of the EU-cycle gain.");
}
