//! SCC control-logic walkthrough: print the swizzle schedules the Fig. 6
//! algorithm derives for interesting execution masks, including the exact
//! worked example of the paper's Fig. 7 (mask 0xAAAA).
//!
//! Run with: `cargo run --release --example swizzle_walkthrough`

use intra_warp_compaction::compaction::{waves, CompactionMode, SccSchedule};
use intra_warp_compaction::isa::ExecMask;

fn main() {
    for (label, bits) in [
        ("Fig. 7 worked example (odd channels)", 0xAAAAu32),
        ("one channel per quad, lane 0", 0x1111),
        ("BCC-friendly aligned quads", 0xF0F0),
        ("half-idle (Ivy Bridge already optimizes)", 0x00FF),
        ("irregular", 0x8421),
        ("five channels (uneven tail)", 0x001F),
    ] {
        let mask = ExecMask::new(bits, 16);
        let sched = SccSchedule::compute(mask);
        sched.validate().expect("schedule invariant");
        println!("-- {label} --");
        println!(
            "mask {mask}: baseline {} / ivb {} / bcc {} / scc {} cycles, {} swizzles{}",
            waves(mask, CompactionMode::Baseline),
            waves(mask, CompactionMode::IvyBridge),
            waves(mask, CompactionMode::Bcc),
            waves(mask, CompactionMode::Scc),
            sched.swizzle_count(),
            if sched.is_bcc_like() {
                " (bcc-like, no crossbar needed)"
            } else {
                ""
            },
        );
        print!("{sched}");
        println!();
    }
}
