//! Trace pipeline walkthrough: capture an execution-mask trace from a real
//! simulation, serialize it to the binary trace format, read it back, and
//! analyze it — then compare with the synthetic trace corpus that stands in
//! for the paper's proprietary traces.
//!
//! Run with: `cargo run --release --example trace_analysis`

use intra_warp_compaction::compaction::CompactionMode;
use intra_warp_compaction::sim::GpuConfig;
use intra_warp_compaction::trace::{analyze, corpus, Trace};
use intra_warp_compaction::workloads::rodinia;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture: run BFS with the mask-capture hook enabled.
    let built = rodinia::bfs(1);
    let cfg = GpuConfig::paper_default().with_mask_capture(true);
    let (result, _img) = built.run(&cfg)?;
    let trace = Trace::from_mask_stream("BFS-captured", &result.eu.mask_trace);
    println!(
        "captured {} mask records from the BFS simulation",
        trace.len()
    );

    // 2. Serialize and reload.
    let mut buf = Vec::new();
    trace.write_to(&mut buf)?;
    let reloaded = Trace::read_from(&buf[..])?;
    assert_eq!(trace, reloaded);
    println!("binary trace roundtrip: {} bytes", buf.len());

    // 3. Analyze: the trace-based benefit matches the simulator's own tally.
    let report = analyze(&reloaded);
    println!(
        "BFS trace: efficiency {:.1}%, BCC -{:.1}%, SCC -{:.1}% EU cycles",
        100.0 * report.simd_efficiency(),
        100.0 * report.reduction(CompactionMode::Bcc),
        100.0 * report.reduction(CompactionMode::Scc),
    );

    // 4. The synthetic corpus (stand-in for the paper's ~600 traces).
    println!("\nsynthetic trace corpus:");
    for profile in corpus().iter().take(6) {
        let r = analyze(&profile.generate(20_000));
        println!(
            "  {:<22} eff {:>5.1}%  bcc -{:>4.1}%  scc -{:>4.1}%",
            profile.name,
            100.0 * r.simd_efficiency(),
            100.0 * r.reduction(CompactionMode::Bcc),
            100.0 * r.reduction(CompactionMode::Scc),
        );
    }
    Ok(())
}
