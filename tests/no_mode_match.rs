//! Architectural invariant of the engine layer (enforced in CI): no crate
//! outside `iwc-compaction` may `match` on `CompactionMode` variants. The
//! simulator, trace analysis, and benchmark harness consume compaction
//! behavior exclusively through the `CompactionEngine` trait and the
//! `EngineRegistry` — per-mode formulas live in one place, the engine
//! impls, so a new design point never needs a scattered arm added.
//!
//! Using the enum as a *value* (`run_mode(&built, CompactionMode::Scc)`)
//! is fine; this test rejects only dispatch on it: a `CompactionMode::X`
//! path followed by `=>` or by a `|` pattern alternation.

use std::path::{Path, PathBuf};

/// Returns the byte offsets of `CompactionMode::<Ident>` occurrences in
/// `src` that are used as match-arm patterns.
fn match_arm_offsets(src: &str) -> Vec<usize> {
    const NEEDLE: &str = "CompactionMode::";
    let bytes = src.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = src[from..].find(NEEDLE) {
        let start = from + pos;
        let mut i = start + NEEDLE.len();
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        // Skip whitespace after the variant path.
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let is_arm = src[j..].starts_with("=>")
            || (bytes.get(j) == Some(&b'|') && bytes.get(j + 1) != Some(&b'|'));
        if is_arm {
            hits.push(start);
        }
        from = i;
    }
    hits
}

fn scan_dir(dir: &Path, violations: &mut Vec<String>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}"));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            scan_dir(&path, violations);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
            for off in match_arm_offsets(&src) {
                let line = src[..off].bytes().filter(|&b| b == b'\n').count() + 1;
                violations.push(format!("{}:{line}", path.display()));
            }
        }
    }
}

#[test]
fn no_compaction_mode_match_outside_the_engine_layer() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for crate_dir in ["crates/sim/src", "crates/trace/src", "crates/bench/src"] {
        scan_dir(&root.join(crate_dir), &mut violations);
    }
    assert!(
        violations.is_empty(),
        "match on CompactionMode outside iwc-compaction's engine layer \
         (dispatch through CompactionEngine / EngineRegistry instead):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn scanner_detects_match_arms() {
    assert_eq!(
        match_arm_offsets("match m { CompactionMode::Scc => 1, _ => 0 }").len(),
        1
    );
    assert_eq!(
        match_arm_offsets("CompactionMode::Bcc | CompactionMode::Scc => 2").len(),
        2
    );
    // Value positions and boolean-or are not dispatch.
    assert!(match_arm_offsets("run(CompactionMode::Scc)").is_empty());
    assert!(match_arm_offsets("a == CompactionMode::Scc || b").is_empty());
}
