//! Differential fuzzing: randomly generated divergent kernels must produce
//! bit-identical memory under every compaction mode (compaction is a pure
//! timing optimization), and their cycle counts must respect the mode
//! ordering.

use intra_warp_compaction::compaction::CompactionMode;
use intra_warp_compaction::isa::{
    CondOp, DataType, FlagReg, KernelBuilder, MemSpace, Opcode, Operand, Predicate, Program,
};
use intra_warp_compaction::sim::{simulate, GpuConfig, Launch, MemoryImage};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Step {
    Alu {
        op_idx: u8,
        dst: u8,
        a: u8,
        b: u8,
    },
    Math {
        op_idx: u8,
        dst: u8,
        a: u8,
    },
    IfElse {
        bits: u16,
        then_ops: Vec<(u8, u8)>,
        else_ops: Vec<(u8, u8)>,
    },
    Loop {
        trips_reg_init: u8,
        body_ops: Vec<(u8, u8)>,
    },
}

/// Value registers r6..r20 (even = f32 vectors at SIMD16).
fn vreg(i: u8) -> Operand {
    Operand::rf(6 + 2 * (i % 8))
}

const ALU_OPS: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Mad,
    Opcode::Min,
    Opcode::Max,
];
const MATH_OPS: [Opcode; 3] = [Opcode::Rsqrt, Opcode::Frc, Opcode::Abs];

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op_idx, dst, a, b)| Step::Alu { op_idx, dst, a, b }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(op_idx, dst, a)| Step::Math {
            op_idx,
            dst,
            a
        }),
        (
            any::<u16>(),
            prop::collection::vec((any::<u8>(), any::<u8>()), 1..5),
            prop::collection::vec((any::<u8>(), any::<u8>()), 1..5)
        )
            .prop_map(|(bits, then_ops, else_ops)| Step::IfElse {
                bits,
                then_ops,
                else_ops
            }),
        (
            1u8..5,
            prop::collection::vec((any::<u8>(), any::<u8>()), 1..4)
        )
            .prop_map(|(trips_reg_init, body_ops)| Step::Loop {
                trips_reg_init,
                body_ops
            }),
    ]
}

fn emit_safe_op(b: &mut KernelBuilder, dst: u8, a: u8) {
    // Keep values bounded: dst = frc(a) * 0.5 + 0.25 stays in [0.25, 0.75].
    b.op(Opcode::Frc, vreg(dst), &[vreg(a)]);
    b.mad(
        vreg(dst),
        vreg(dst),
        Operand::imm_f(0.5),
        Operand::imm_f(0.25),
    );
}

fn build_kernel(steps: &[Step]) -> Program {
    let mut b = KernelBuilder::new("fuzz", 16);
    // Init value registers from the lane id so lanes differ.
    b.and(Operand::rud(22), Operand::rud(1), Operand::imm_ud(15));
    for i in 0..8u8 {
        b.mov(vreg(i), Operand::rud(22));
        b.mad(
            vreg(i),
            vreg(i),
            Operand::imm_f(0.01),
            Operand::imm_f(0.1 + f32::from(i)),
        );
    }
    for step in steps {
        match step {
            Step::Alu {
                op_idx,
                dst,
                a,
                b: src_b,
            } => {
                let op = ALU_OPS[usize::from(op_idx % ALU_OPS.len() as u8)];
                if op == Opcode::Mad {
                    b.mad(vreg(*dst), vreg(*a), Operand::imm_f(0.5), vreg(*src_b));
                } else {
                    b.op(op, vreg(*dst), &[vreg(*a), vreg(*src_b)]);
                }
                // Renormalize to avoid overflow drift.
                emit_safe_op(&mut b, *dst, *dst);
            }
            Step::Math { op_idx, dst, a } => {
                let op = MATH_OPS[usize::from(op_idx % MATH_OPS.len() as u8)];
                b.op(Opcode::Abs, vreg(*dst), &[vreg(*a)]);
                b.add(vreg(*dst), vreg(*dst), Operand::imm_f(0.5)); // keep rsqrt domain safe
                b.op(op, vreg(*dst), &[vreg(*dst)]);
                emit_safe_op(&mut b, *dst, *dst);
            }
            Step::IfElse {
                bits,
                then_ops,
                else_ops,
            } => {
                // cond: lane-id bit pattern — deterministic divergence.
                b.shr(
                    Operand::rud(24),
                    Operand::imm_ud(u32::from(*bits)),
                    Operand::rud(22),
                );
                b.and(Operand::rud(24), Operand::rud(24), Operand::imm_ud(1));
                b.cmp(
                    CondOp::Ne,
                    FlagReg::F0,
                    Operand::rud(24),
                    Operand::imm_ud(0),
                );
                b.if_(Predicate::normal(FlagReg::F0));
                for (dst, a) in then_ops {
                    emit_safe_op(&mut b, *dst, *a);
                }
                b.else_();
                for (dst, a) in else_ops {
                    emit_safe_op(&mut b, *dst, *a);
                }
                b.end_if();
            }
            Step::Loop {
                trips_reg_init,
                body_ops,
            } => {
                // Per-lane trip count: 1 + (lane % trips_reg_init+1).
                b.op(
                    Opcode::Irem,
                    Operand::rud(26),
                    &[
                        Operand::rud(22),
                        Operand::imm_ud(u32::from(*trips_reg_init) + 1),
                    ],
                );
                b.add(Operand::rud(26), Operand::rud(26), Operand::imm_ud(1));
                b.do_();
                for (dst, a) in body_ops {
                    emit_safe_op(&mut b, *dst, *a);
                }
                b.add(
                    Operand::rud(26),
                    Operand::rud(26),
                    Operand::imm_ud(0xFFFF_FFFF),
                );
                b.cmp(
                    CondOp::Gt,
                    FlagReg::F0,
                    Operand::rud(26),
                    Operand::imm_ud(0),
                );
                b.while_(Predicate::normal(FlagReg::F0));
            }
        }
    }
    // Digest: out[gid] = sum of all value registers.
    let acc = Operand::rf(28);
    b.mov(acc, Operand::imm_f(0.0));
    for i in 0..8u8 {
        b.add(acc, acc, vreg(i));
    }
    b.shl(Operand::rud(30), Operand::rud(1), Operand::imm_ud(2));
    b.add(
        Operand::rud(30),
        Operand::rud(30),
        Operand::scalar(3, 0, DataType::Ud),
    );
    b.store(MemSpace::Global, Operand::rud(30), acc);
    b.finish().expect("generated kernel is structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_mode_invariant(steps in prop::collection::vec(arb_step(), 1..8)) {
        let program = build_kernel(&steps);
        let mut reference: Option<(Vec<u32>, u64)> = None;
        for mode in CompactionMode::ALL {
            let mut img = MemoryImage::new(1 << 16);
            let out = img.alloc(128 * 4);
            let launch = Launch::new(program.clone(), 128, 64).with_args(&[out]);
            let cfg = GpuConfig::paper_default().with_compaction(mode);
            let r = simulate(&cfg, &launch, &mut img).expect("fuzz kernel completes");
            let words = img.read_u32_slice(out, 128);
            match &reference {
                None => reference = Some((words, r.cycles)),
                Some((ref_words, base_cycles)) => {
                    prop_assert_eq!(ref_words, &words, "memory differs under {}", mode);
                    prop_assert!(
                        r.cycles <= *base_cycles,
                        "{} ({} cycles) slower than baseline ({})",
                        mode, r.cycles, base_cycles
                    );
                }
            }
        }
    }
}
