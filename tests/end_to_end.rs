//! Cross-crate integration tests: workloads built with `iwc-workloads`,
//! executed by `iwc-sim`, accounted by `iwc-compaction`, and traced through
//! `iwc-trace` must tell one consistent story.

use intra_warp_compaction::compaction::CompactionMode;
use intra_warp_compaction::sim::GpuConfig;
use intra_warp_compaction::trace::{analyze, Trace};
use intra_warp_compaction::workloads::{coherent, micro, raytrace, rodinia, Built};

fn sample_workloads() -> Vec<Built> {
    vec![
        coherent::vecadd(1),
        coherent::matmul(1),
        rodinia::bfs(1),
        rodinia::particle_filter(1),
        raytrace::ambient_occlusion(raytrace::SceneKind::Bl, 16, 1),
        micro::mask_pattern(0xAAAA, 1),
    ]
}

/// Every workload produces correct results under every compaction mode —
/// compaction is a pure timing optimization (DESIGN.md invariant 3).
#[test]
fn results_correct_under_every_mode() {
    for built in sample_workloads() {
        for mode in CompactionMode::ALL {
            let cfg = GpuConfig::paper_default().with_compaction(mode);
            built
                .run_checked(&cfg)
                .unwrap_or_else(|e| panic!("{} under {mode}: {e}", built.name));
        }
    }
}

/// Wall-clock cycles are monotone in optimization strength: scc <= bcc <=
/// baseline (IVB may reorder against BCC in wall-clock only through
/// second-order scheduling noise, so it is checked loosely).
#[test]
fn cycles_monotone_in_mode_strength() {
    for built in sample_workloads() {
        let run = |mode| {
            built
                .run(&GpuConfig::paper_default().with_compaction(mode))
                .expect("simulation completes")
                .0
                .cycles
        };
        let base = run(CompactionMode::Baseline);
        let bcc = run(CompactionMode::Bcc);
        let scc = run(CompactionMode::Scc);
        assert!(bcc <= base, "{}: bcc {bcc} > baseline {base}", built.name);
        // Allow 2% scheduling noise for SCC vs BCC on nearly-coherent loads.
        assert!(
            scc as f64 <= bcc as f64 * 1.02,
            "{}: scc {scc} > bcc {bcc}",
            built.name
        );
    }
}

/// The captured mask trace reproduces the simulator's own SIMD-efficiency
/// accounting exactly.
#[test]
fn captured_trace_matches_sim_tally() {
    let built = rodinia::bfs(1);
    let cfg = GpuConfig::paper_default().with_mask_capture(true);
    let (result, _) = built.run(&cfg).expect("bfs runs");
    let trace = Trace::from_mask_stream("bfs", &result.eu.mask_trace);
    assert_eq!(
        trace.len() as u64,
        result.eu.issued - skipped_control(&result)
    );
    let report = analyze(&trace);
    let sim_eff = result.eu.simd_tally.simd_efficiency();
    assert!(
        (report.simd_efficiency() - sim_eff).abs() < 1e-12,
        "trace eff {} != sim eff {sim_eff}",
        report.simd_efficiency()
    );
}

fn skipped_control(result: &intra_warp_compaction::sim::SimResult) -> u64 {
    // Issued instructions include control flow, which the mask capture skips.
    result.eu.issued - result.eu.mask_trace.len() as u64
}

/// Coherent kernels: no mode changes the cycle count at all (invariant 5).
#[test]
fn coherent_kernels_unaffected() {
    for built in [coherent::vecadd(1), coherent::mersenne(1)] {
        let cycles: Vec<u64> = CompactionMode::ALL
            .iter()
            .map(|&m| {
                built
                    .run(&GpuConfig::paper_default().with_compaction(m))
                    .expect("runs")
                    .0
                    .cycles
            })
            .collect();
        assert!(
            cycles.windows(2).all(|w| w[0] == w[1]),
            "{}: {cycles:?}",
            built.name
        );
    }
}

/// Memory behavior is identical across modes (invariant 4): loads, stores,
/// and distinct lines requested do not change.
#[test]
fn memory_stream_identical_across_modes() {
    let built = raytrace::ambient_occlusion(raytrace::SceneKind::Wm, 16, 1);
    let stats: Vec<_> = CompactionMode::ALL
        .iter()
        .map(|&m| {
            let (r, _) = built
                .run(&GpuConfig::paper_default().with_compaction(m))
                .expect("runs");
            (r.mem.loads, r.mem.stores, r.mem.lines_requested)
        })
        .collect();
    assert!(stats.windows(2).all(|w| w[0] == w[1]), "{stats:?}");
}

/// The analytic EU-cycle accounting agrees between runs of different modes
/// (it is a function of the executed mask stream only).
#[test]
fn eu_cycle_accounting_mode_invariant() {
    let built = rodinia::eigenvalue(1);
    let tallies: Vec<_> = CompactionMode::ALL
        .iter()
        .map(|&m| {
            built
                .run(&GpuConfig::paper_default().with_compaction(m))
                .expect("runs")
                .0
                .eu
                .compute_tally
                .cycles
        })
        .collect();
    assert!(tallies.windows(2).all(|w| w[0] == w[1]), "{tallies:?}");
}
