//! Headline claims of the paper, asserted against the reproduction. These
//! are *shape* checks: who wins, by roughly what factor, where the
//! crossovers fall — not absolute-number matches (our substrate is a
//! simulator, not the authors' testbed).

use intra_warp_compaction::compaction::{waves, CompactionMode};
use intra_warp_compaction::isa::ExecMask;
use intra_warp_compaction::sim::GpuConfig;
use intra_warp_compaction::trace::{analyze, corpus};
use intra_warp_compaction::workloads::{catalog, Category};

/// Abstract claim: SCC subsumes BCC ("its benefits are at least as much as
/// that of BCC", §5.1) — for every possible SIMD16 mask.
#[test]
fn scc_subsumes_bcc_for_every_mask() {
    for bits in 0..=0xFFFFu32 {
        let m = ExecMask::new(bits, 16);
        assert!(
            waves(m, CompactionMode::Scc) <= waves(m, CompactionMode::Bcc),
            "{bits:#x}"
        );
    }
}

/// Fig. 10 / abstract: divergent applications see up to ~40%+ EU-cycle
/// reduction, around 20% on average, over the Ivy Bridge baseline.
#[test]
fn divergent_average_reduction_matches_paper_band() {
    let mut reductions = Vec::new();
    for entry in catalog() {
        if entry.category != Category::Divergent {
            continue;
        }
        let built = (entry.build)(1);
        let (r, _) = built.run(&GpuConfig::paper_default()).expect("runs");
        reductions.push(r.compute_tally().reduction_vs_ivb(CompactionMode::Scc));
    }
    for profile in corpus() {
        let report = analyze(&profile.generate(20_000));
        reductions.push(report.reduction(CompactionMode::Scc));
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        (0.12..=0.35).contains(&avg),
        "average SCC reduction {avg:.3} outside the paper's ~20% band"
    );
    assert!(max >= 0.35, "max SCC reduction {max:.3} should be ~40%+");
}

/// §5.3: "In 23 out of 29 applications ... SCC offers considerable gains
/// beyond BCC alone" — in our suite, a solid majority of divergent
/// workloads see extra SCC benefit.
#[test]
fn scc_extra_benefit_on_most_divergent_workloads() {
    let mut with_extra = 0usize;
    let mut total = 0usize;
    for profile in corpus() {
        let report = analyze(&profile.generate(20_000));
        total += 1;
        if report.scc_extra() > 0.01 {
            with_extra += 1;
        }
    }
    assert!(
        with_extra * 3 >= total * 2,
        "only {with_extra}/{total} traces show extra SCC benefit"
    );
}

/// §5.2 (Fig. 8 inference): the Ivy Bridge optimization makes the balanced
/// 0x00FF if/else run at the no-divergence time, while 0xF0F0 runs at ~2x.
#[test]
fn ivy_bridge_optimization_pattern() {
    use intra_warp_compaction::workloads::micro::mask_pattern;
    let cfg = GpuConfig::single_eu();
    let run = |pat: u16| {
        mask_pattern(pat, 1)
            .run_checked(&cfg)
            .unwrap_or_else(|e| panic!("{e}"))
            .cycles as f64
    };
    let base = run(0xFFFF);
    assert!(
        (run(0x00FF) / base - 1.0).abs() < 0.15,
        "0x00FF should match no-divergence"
    );
    assert!(run(0xF0F0) / base > 1.6, "0xF0F0 should cost ~2x");
}

/// §5.4 / Fig. 12: BFS is dominated by memory stalls — its wall-clock gain
/// is a small fraction of its EU-cycle gain, even though the EU-cycle gain
/// is the largest in the suite.
#[test]
fn bfs_is_memory_bound() {
    let built = intra_warp_compaction::workloads::rodinia::bfs(1);
    let (base, _) = built.run(&GpuConfig::paper_default()).expect("runs");
    let (scc, _) = built
        .run(&GpuConfig::paper_default().with_compaction(CompactionMode::Scc))
        .expect("runs");
    let eu_gain = base.compute_tally().reduction_vs_ivb(CompactionMode::Scc);
    let time_gain = 1.0 - scc.cycles as f64 / base.cycles as f64;
    assert!(eu_gain > 0.3, "BFS EU gain {eu_gain:.3}");
    assert!(
        time_gain < eu_gain / 2.0,
        "BFS wall-clock gain {time_gain:.3} should lag far behind EU gain {eu_gain:.3}"
    );
}

/// §4.3: the BCC register file costs ~10% area; the inter-warp 8-banked
/// file costs over 40%.
#[test]
fn register_file_area_ordering() {
    use intra_warp_compaction::compaction::{RfModel, RfOrganization};
    let bcc = RfModel::new(RfOrganization::Bcc).area_overhead_vs_baseline();
    let iw = RfModel::new(RfOrganization::InterWarp).area_overhead_vs_baseline();
    assert!((0.05..0.15).contains(&bcc), "BCC overhead {bcc:.3}");
    assert!(iw > 0.40, "inter-warp overhead {iw:.3}");
}

/// Paper's premise (§3): SIMD8 kernels have access to all 128 registers
/// while SIMD16 kernels effectively halve the register count — our AO
/// kernels exist in both widths and the SIMD16 variant diverges at least as
/// much (wider warps diverge more, §5.4 last paragraph).
#[test]
fn wider_warps_diverge_more() {
    use intra_warp_compaction::workloads::raytrace::{ambient_occlusion, SceneKind};
    let cfg = GpuConfig::paper_default();
    let (r8, _) = ambient_occlusion(SceneKind::Bl, 8, 1)
        .run(&cfg)
        .expect("runs");
    let (r16, _) = ambient_occlusion(SceneKind::Bl, 16, 1)
        .run(&cfg)
        .expect("runs");
    assert!(
        r16.simd_efficiency() <= r8.simd_efficiency() + 0.02,
        "SIMD16 ({:.3}) should diverge at least as much as SIMD8 ({:.3})",
        r16.simd_efficiency(),
        r8.simd_efficiency()
    );
}
