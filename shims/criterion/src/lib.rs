//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps `cargo bench` working with the same
//! bench-definition API (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `black_box`). Each
//! benchmark is timed with a short calibrated loop and reported as a median
//! ns/iter line on stdout — no statistics engine, no HTML reports.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings shared by a [`Criterion`] and its groups.
#[derive(Clone, Copy, Debug)]
struct Settings {
    /// Target wall-clock time per benchmark.
    measure: Duration,
    /// Number of timed samples taken (median is reported).
    samples: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measure: Duration::from_millis(200),
            samples: 11,
        }
    }
}

/// The benchmark manager (mirrors `criterion::Criterion`).
pub struct Criterion {
    settings: Settings,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` forwards a `--bench` flag plus any user filter
        // string; honor the filter, ignore flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            settings: Settings::default(),
            filter,
        }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.settings, &self.filter, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; also shortens
    /// the measurement window proportionally).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.samples = n.max(3);
        self.settings.measure = Duration::from_millis(20).saturating_mul(n.max(3) as u32);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.settings, &self.filter, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Passed to the closure of `bench_function`; drives the timed iterations.
pub struct Bencher {
    settings: Settings,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median ns/iter across samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in one sample window?
        let per_sample = self.settings.measure.as_nanos() as f64 / self.settings.samples as f64;
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            if elapsed >= per_sample / 4.0 || n >= 1 << 30 {
                let target = (per_sample / (elapsed / n as f64).max(0.5)).max(1.0);
                n = target as u64;
                break;
            }
            n *= 4;
        }
        let mut samples: Vec<f64> = (0..self.settings.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / n as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    settings: Settings,
    filter: &Option<String>,
    f: &mut F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        settings,
        median_ns: f64::NAN,
    };
    f(&mut b);
    if b.median_ns.is_nan() {
        println!("{id:<40} (no measurement)");
    } else {
        println!("{id:<40} {:>12.1} ns/iter", b.median_ns);
    }
}

/// Declares a group-runner function over the listed bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
