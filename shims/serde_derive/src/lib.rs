//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real crates.io
//! `serde_derive` cannot be fetched. This repo only ever uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations — no
//! code path serializes anything yet — so the derives here accept the same
//! syntax (including `#[serde(...)]` helper attributes) and expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
