//! Deterministic test RNG and run configuration.

/// Run configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// SplitMix64-backed deterministic RNG, seeded from the test name so every
/// run of a given property replays the same input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform sample in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
