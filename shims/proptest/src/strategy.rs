//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// simply produces one fresh value per call.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A type-erased strategy handle.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        self.inner.new_value(rng)
    }
}

/// Uniform choice among equally weighted branches (backs
/// [`crate::prop_oneof!`]).
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `branches` must be non-empty.
    #[must_use]
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return (rng.next_u64() as $t).wrapping_add(lo);
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}
