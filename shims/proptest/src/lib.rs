//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the property tests meaningful: the `proptest!`
//! macro runs each property over `ProptestConfig::cases` deterministic
//! pseudo-random inputs (seeded from the test's module path and name, so
//! runs are reproducible), and the strategy combinators the workspace uses
//! (`any`, ranges, tuples, `prop_map`, `prop_oneof!`, `Just`,
//! `prop::collection::vec`, simple string patterns) generate uniform
//! samples. Shrinking is not implemented — a failing case panics with the
//! generated inputs left to `Debug` formatting in the assertion message.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the `prop` module re-export inside the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs each contained property function over many generated inputs.
///
/// Supports the subset of the real macro grammar this workspace uses: an
/// optional `#![proptest_config(expr)]` header and one or more
/// `fn name(pat in strategy, ...) { body }` items, each with optional
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Internal item muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let ($($arg,)*) = ($(
                    $crate::strategy::Strategy::new_value(&($strat), &mut __rng),
                )*);
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property body (panics on failure, like the
/// real macro does after shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among the listed strategies (all branches equally
/// weighted, which is all this workspace relies on).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
