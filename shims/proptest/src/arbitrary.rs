//! `any::<T>()` support (subset of `proptest::arbitrary`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` over its full domain (finite values only
/// for floats).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Sample raw bit patterns (covers subnormals and both zeros),
        // rerolling the ~0.4 % of draws that land on NaN/infinity.
        loop {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        loop {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                return v;
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}
