//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
