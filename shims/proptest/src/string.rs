//! String generation from a small regex-like pattern subset.
//!
//! Supports exactly what the workspace's property tests use: literal
//! characters, character classes `[a-zA-Z0-9_-]`, and the quantifiers
//! `{m,n}`, `{n}`, `*`, `+`, `?`. Anything fancier panics so a silently
//! wrong generator can never masquerade as coverage.

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    /// Inclusive upper bound on repetitions.
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    match c {
                        ']' => break,
                        '^' if set.is_empty() && prev.is_none() => {
                            panic!("negated classes unsupported in pattern {pattern:?}")
                        }
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("range needs a start");
                            let hi = chars.next().expect("range needs an end");
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            set.extend(lo..=hi);
                        }
                        _ => {
                            if let Some(p) = prev.replace(c) {
                                set.push(p);
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(set)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '.' | '(' | ')' | '|' => panic!("unsupported metachar {c:?} in pattern {pattern:?}"),
            _ => Atom::Literal(c),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                if let Some((lo, hi)) = spec.split_once(',') {
                    (
                        lo.parse().expect("bad quantifier"),
                        hi.parse().expect("bad quantifier"),
                    )
                } else {
                    let n = spec.parse().expect("bad quantifier");
                    (n, n)
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one string matching `pattern`.
pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::from_name("class_with_quantifier");
        for _ in 0..500 {
            let s = generate("[a-zA-Z0-9_-]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn literals_and_optional() {
        let mut rng = TestRng::from_name("literals_and_optional");
        for _ in 0..50 {
            let s = generate("ab?c{2}", &mut rng);
            assert!(s == "abcc" || s == "acc", "unexpected {s:?}");
        }
    }
}
