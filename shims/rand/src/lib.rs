//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim reimplements exactly the API surface the workspace
//! uses — `SmallRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool` — on top of SplitMix64, a small, fast,
//! well-distributed 64-bit generator. Determinism matters more than
//! bit-compatibility here: synthetic traces are generated once per run and
//! compared against themselves, never against artifacts produced by the
//! real `rand`.

#![warn(missing_docs)]

/// Core RNG abstraction (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, diffusing it over the
    /// full state.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let z = splitmix64_mix(s);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Modulo with a 64-bit draw: bias is negligible for the
                // small spans used in trace synthesis.
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(u64::from(inclusive));
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return (rng.next_u64() as $t).wrapping_add(lo);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a uniformly distributed sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing RNG methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64 here; the
    /// real crate uses xoshiro).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            super::splitmix64_mix(self.state)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..=8u32);
            assert!((3..=8).contains(&v));
            let f = rng.gen_range(-0.35..0.35f64);
            assert!((-0.35..0.35).contains(&f));
            let w = rng.gen_range(0..16u32);
            assert!(w < 16);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
