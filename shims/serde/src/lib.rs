//! Offline stand-in for `serde`.
//!
//! The workspace declares `serde` with the `derive` feature purely as a
//! forward-looking annotation on result structs; nothing is serialized at
//! runtime yet and the build environment cannot fetch crates.io. These
//! marker traits satisfy the `use serde::{Deserialize, Serialize}` imports,
//! and the derive macros (re-exported from the local `serde_derive` shim)
//! expand to nothing.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
