//! # intra-warp-compaction
//!
//! A full reproduction of *"SIMD Divergence Optimization through Intra-Warp
//! Compaction"* (Vaidya, Shayesteh, Woo, Saharoy, Azimi — ISCA 2013) as a
//! Rust workspace. This facade crate re-exports the component crates:
//!
//! * [`compaction`] (`iwc-compaction`) — the paper's contribution: BCC and
//!   SCC execution-cycle compression, the SCC swizzle-settings algorithm of
//!   Fig. 6, quartile micro-op expansion, and register-file models;
//! * [`isa`] (`iwc-isa`) — the Gen-style variable-width SIMD ISA the
//!   kernels are written in;
//! * [`sim`] (`iwc-sim`) — a cycle-level simulator of an Ivy Bridge-style
//!   GPU (EU pipeline, SIMT stacks, SLM/L3/LLC/DRAM, data cluster);
//! * [`workloads`] (`iwc-workloads`) — the Table 1 workload suite:
//!   coherent kernels, divergent Rodinia-class kernels, ray tracing, and
//!   the divergence micro-benchmarks;
//! * [`trace`] (`iwc-trace`) — execution-mask traces, synthetic trace
//!   generators, and the trace analyzer.
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-versus-measured results. The `iwc-bench`
//! crate regenerates every table and figure:
//! `cargo run --release -p iwc-bench --bin fig10`.
//!
//! # Examples
//!
//! Measure BCC/SCC cycle compression on a single mask:
//!
//! ```
//! use intra_warp_compaction::compaction::{execution_cycles, CompactionMode};
//! use intra_warp_compaction::isa::{DataType, ExecMask};
//!
//! let mask = ExecMask::new(0xAAAA, 16); // odd channels only
//! assert_eq!(execution_cycles(mask, DataType::F, CompactionMode::Baseline), 4);
//! assert_eq!(execution_cycles(mask, DataType::F, CompactionMode::Scc), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use iwc_compaction as compaction;
pub use iwc_isa as isa;
pub use iwc_sim as sim;
pub use iwc_trace as trace;
pub use iwc_workloads as workloads;
